//! The pure experiment-cell entry point used by the parallel harness.
//!
//! One [`Cell`] is one point of the reproduction matrix: algorithm ×
//! dataset × platform × machine mode, plus the scaling knobs. A cell
//! owns its entire configuration, so running it is a pure function of
//! the struct — no globals, no environment reads — which is what lets
//! the harness run cells on worker threads and cache their results
//! content-addressed.
//!
//! One deliberate exception: the process-global
//! [`scu_gpu::SimThreads`] knob, which fans the GPU engine's timing
//! reconstruction out across per-SM lanes. It is *not* part of the
//! cell configuration or [`Cell::cache_key`] because the engine
//! guarantees byte-identical results at any thread count — the knob
//! changes how fast a cell simulates, never what it produces.
//!
//! The serialised cell configuration (plus [`MODEL_VERSION`]) *is* the
//! cache key; [`CellResult`] is the cached value. Raw per-node answer
//! vectors are too large to cache, so results carry their length and a
//! FNV-1a fingerprint instead — enough to assert cross-mode agreement.
//!
//! The key is actually **two-level**. [`Cell::cache_key`] addresses
//! finished results and misses on any change. Beneath it,
//! [`Cell::semantic_key`] addresses the recorded *functional traces*
//! (per-warp memory streams) and deliberately excludes every
//! timing-only knob — so a timing-model sweep that invalidates all
//! results still replays the recorded traces instead of re-recording
//! them, killing the sequential functional pass that otherwise bounds
//! threaded speedup (the Amdahl wall).

use std::sync::{Arc, Mutex, OnceLock};

use scu_core::ScuConfig;
use scu_graph::{Csr, Dataset};
use scu_trace::{PhaseRow, Timeline};
use serde::{Deserialize, Serialize};
use serde_json::Value;

use crate::report::RunReport;
use crate::runner::{run_configured, Algorithm, Mode, RunOutput};
use crate::system::SystemKind;

/// Version tag of the simulator model, mixed into every cache key.
///
/// Bump this whenever a change alters any simulated metric or answer
/// (timing model, energy model, generators, algorithms); cached
/// results from older versions then simply stop matching and are
/// recomputed. Leave it alone for pure refactors.
pub const MODEL_VERSION: &str = "scu-sim-2";

/// Version tag of the *functional* model, mixed into every
/// [`Cell::semantic_key`].
///
/// Bump this whenever a change alters what the kernels *compute* —
/// the per-thread memory traces or the algorithm answers: generators,
/// frontier construction, filtering hash behaviour, kernel bodies.
/// Timing-model changes (latencies, widths, DRAM efficiency, the
/// roofline) do NOT bump it: they bump [`MODEL_VERSION`] and the
/// recorded traces stay valid, which is the whole point of the
/// two-level cache.
pub const FUNCTIONAL_VERSION: &str = "scu-func-1";

/// One fully-specified point of the experiment matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Graph primitive to run.
    pub algorithm: Algorithm,
    /// Input graph class.
    pub dataset: Dataset,
    /// Simulated platform.
    pub system: SystemKind,
    /// Machine variant (baseline GPU or an SCU configuration).
    pub mode: Mode,
    /// PageRank iteration cap (ignored by the other algorithms).
    pub pr_iters: u32,
    /// Dataset size as a fraction of the published node count.
    pub scale: f64,
    /// Seed for the synthetic graph generator.
    pub seed: u64,
    /// SCU parameter override for ablations; `None` means the
    /// platform's Table 2 configuration.
    pub scu_config: Option<ScuConfig>,
}

impl Cell {
    /// Stable human-readable identifier, used for progress lines and
    /// `--filter` matching: `BFS/cond/GTX980/scu-enhanced`.
    pub fn id(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.algorithm.name(),
            self.dataset.name(),
            self.system.name(),
            self.mode.name()
        )
    }

    /// The content-addressed **timing-level** cache key: the full
    /// configuration plus the model version. Every knob participates,
    /// so any change — functional or timing — misses and recomputes.
    /// The coarser [`Cell::semantic_key`] sits underneath it and keys
    /// the recorded functional traces, which survive timing-only
    /// changes. The byte layout of this key is load-bearing (it
    /// addresses persisted results); do not reorder or rename fields.
    pub fn cache_key(&self) -> Value {
        Value::Object(vec![
            ("model".to_string(), Value::Str(MODEL_VERSION.to_string())),
            ("cell".to_string(), serde_json::to_value(self)),
        ])
    }

    /// The label of this cell's *functional* execution — which modes
    /// run byte-identical kernel bodies and so may share recorded
    /// traces. Derived from `runner::run_configured`'s dispatch:
    /// the GPU baseline ignores the SCU entirely; BFS and CC have one
    /// compaction-only variant (`ScuBasic`) and one filtered variant
    /// (`ScuFilteringOnly` and `ScuEnhanced` differ only in SCU
    /// timing); SSSP's three SCU modes all produce different
    /// frontiers; K-Core and PageRank never filter, so every SCU mode
    /// shares one functional execution.
    fn functional_variant(&self) -> &'static str {
        use Algorithm::*;
        use Mode::*;
        match (self.algorithm, self.mode) {
            (_, GpuBaseline) => "gpu",
            (Bfs | Cc, ScuBasic) | (Sssp, ScuBasic) => "scu-basic",
            (Bfs | Cc, ScuFilteringOnly | ScuEnhanced) => "scu-filter",
            (Sssp, ScuFilteringOnly) => "scu-filter",
            (Sssp, ScuEnhanced) => "scu-enhanced",
            (PageRank | KCore, _) => "scu",
        }
    }

    /// The content-addressed **semantic** key: everything that shapes
    /// what the kernels compute — and nothing that only shapes how
    /// long the model says it took. Recorded functional traces are
    /// persisted under this key, so two cells that differ only in
    /// timing knobs (pipeline width, issue latencies, DRAM
    /// efficiency, L1/L2 geometry, frequency, the `SimThreads` knob)
    /// replay the same stored trace.
    ///
    /// What participates, and why:
    /// - [`FUNCTIONAL_VERSION`], the algorithm, and the
    ///   [`Cell::functional_variant`] — which kernel bodies run.
    /// - Dataset, scale (exact bit pattern), and seed — the input.
    /// - GPU launch geometry (`num_sms`, `threads_per_sm`,
    ///   `warp_size`) — thread-to-warp-to-SM assignment shapes every
    ///   recorded stream.
    /// - PageRank's iteration cap, for PageRank only.
    /// - For SCU modes: the three *hash-table geometries* of the
    ///   effective SCU config. These look like timing knobs but are
    ///   functional — a smaller or differently-associative filter
    ///   table evicts differently, passes different duplicates, and
    ///   changes the frontier the next kernel launch consumes. Every
    ///   other `ScuConfig` field is timing-only and excluded.
    pub fn semantic_key(&self) -> Value {
        let gpu = self.system.gpu_config();
        let mut fields = vec![
            (
                "func".to_string(),
                Value::Str(FUNCTIONAL_VERSION.to_string()),
            ),
            (
                "algo".to_string(),
                Value::Str(self.algorithm.name().to_string()),
            ),
            (
                "variant".to_string(),
                Value::Str(self.functional_variant().to_string()),
            ),
            ("dataset".to_string(), serde_json::to_value(&self.dataset)),
            ("scale_bits".to_string(), Value::U64(self.scale.to_bits())),
            ("seed".to_string(), Value::U64(self.seed)),
            (
                "geometry".to_string(),
                Value::Object(vec![
                    ("num_sms".to_string(), Value::U64(gpu.num_sms as u64)),
                    (
                        "threads_per_sm".to_string(),
                        Value::U64(gpu.threads_per_sm as u64),
                    ),
                    ("warp_size".to_string(), Value::U64(gpu.warp_size as u64)),
                ]),
            ),
        ];
        if self.algorithm == Algorithm::PageRank {
            fields.push(("pr_iters".to_string(), Value::U64(self.pr_iters as u64)));
        }
        if self.mode.uses_scu() {
            let scu = self
                .scu_config
                .clone()
                .unwrap_or_else(|| self.system.scu_config());
            fields.push((
                "hash".to_string(),
                Value::Object(vec![
                    (
                        "filter_bfs".to_string(),
                        serde_json::to_value(&scu.filter_bfs_hash),
                    ),
                    (
                        "filter_sssp".to_string(),
                        serde_json::to_value(&scu.filter_sssp_hash),
                    ),
                    (
                        "grouping".to_string(),
                        serde_json::to_value(&scu.grouping_hash),
                    ),
                ]),
            ));
        }
        Value::Object(fields)
    }

    /// [`Cell::semantic_key`] serialised — the string the trace cache
    /// embeds in every stored blob and verifies on load.
    pub fn semantic_key_string(&self) -> String {
        serde_json::to_string(&self.semantic_key())
            .expect("a hand-built key object always serialises")
    }

    /// Runs the cell: builds (or reuses) the input graph, simulates,
    /// and summarises. Pure with respect to the configuration — equal
    /// cells produce equal results on any thread, in any order.
    pub fn run(&self) -> CellResult {
        // Failpoint site for fault-injection tests: with
        // `SCU_FAILPOINTS=cell-run=…` armed, a cell can be made to
        // panic, stall, or flake deterministically.
        scu_harness::failpoint::apply("cell-run");
        let g = shared_graph(self.dataset, self.scale, self.seed);
        // Scope a trace-cache session over the simulation: warm
        // sessions feed recorded per-SM streams straight to the
        // timing lanes; cold ones record for next time. Dropping the
        // scope (even on panic) finalises the session.
        let _trace = scu_gpu::trace_cache::begin_cell(&self.semantic_key_string());
        let out = run_configured(
            self.algorithm,
            &g,
            self.system,
            self.mode,
            self.pr_iters,
            self.scu_config.as_ref(),
        );
        CellResult::new(self.id(), &out)
    }

    /// [`Cell::run`], also handing back the full event timeline the
    /// run recorded — for trace export, where the summary alone is
    /// not enough.
    pub fn run_traced(&self) -> (CellResult, Timeline) {
        scu_harness::failpoint::apply("cell-run");
        let g = shared_graph(self.dataset, self.scale, self.seed);
        let _trace = scu_gpu::trace_cache::begin_cell(&self.semantic_key_string());
        let out = run_configured(
            self.algorithm,
            &g,
            self.system,
            self.mode,
            self.pr_iters,
            self.scu_config.as_ref(),
        );
        let result = CellResult::new(self.id(), &out);
        (result, out.timeline)
    }

    /// [`Cell::run`] as a JSON value — the closure body the harness
    /// executes and caches.
    pub fn run_value(&self) -> Value {
        serde_json::to_value(&self.run())
    }
}

/// What one cell produced: the measurement report plus a fingerprint
/// of the algorithm's answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// The cell's [`Cell::id`].
    pub id: String,
    /// Length of the per-node answer vector.
    pub values_len: u64,
    /// FNV-1a fingerprint of the answer values (little-endian u64s) —
    /// byte-identical answers across modes hash identically.
    pub values_fnv: u64,
    /// The full measurement report.
    pub report: RunReport,
    /// Order-sensitive digest of the run's event timeline. Two runs
    /// of the same cell on the same model version emit byte-identical
    /// event streams, so the digest doubles as a determinism check
    /// across threads, processes, and `--resume` boundaries.
    pub timeline_digest: u64,
    /// Per-iteration phase breakdown derived from the timeline —
    /// small enough to cache, unlike the raw event stream.
    pub phases: Vec<PhaseRow>,
}

impl CellResult {
    /// Summarises a raw [`RunOutput`].
    pub fn new(id: String, out: &RunOutput) -> Self {
        CellResult {
            id,
            values_len: out.values.len() as u64,
            values_fnv: fnv1a_u64s(&out.values),
            report: out.report.clone(),
            timeline_digest: out.timeline.digest(),
            phases: out.timeline.phase_breakdown(),
        }
    }

    /// Parses a cached value back into a result.
    ///
    /// # Errors
    ///
    /// Returns the underlying decode error if `value` does not have
    /// this shape (e.g. a cache blob from a foreign version).
    pub fn from_value(value: &Value) -> Result<Self, serde_json::Error> {
        serde_json::from_value(value)
    }
}

/// FNV-1a over the little-endian byte stream of the values.
fn fnv1a_u64s(values: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Graph key: scale participates via its exact bit pattern.
type GraphKey = (Dataset, u64, u64);

/// Most graphs the process-wide memo retains at once, by default.
/// Overridable via `SCU_GRAPH_MEMO_ENTRIES` (read once, at first use).
///
/// The default matrix touches 6 datasets at one (scale, seed), so a
/// full sweep stays fully memoised; multi-scale sweeps (ablation,
/// scaling studies) evict least-recently-used graphs instead of
/// accumulating every size ever built for the life of the process.
const GRAPH_MEMO_CAP: usize = 8;

/// The effective memo cap: `SCU_GRAPH_MEMO_ENTRIES` when set to a
/// positive integer, [`GRAPH_MEMO_CAP`] otherwise.
fn graph_memo_cap() -> usize {
    std::env::var("SCU_GRAPH_MEMO_ENTRIES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&cap| cap > 0)
        .unwrap_or(GRAPH_MEMO_CAP)
}

/// How many evicted keys the memo remembers for thrash detection.
const EVICTED_KEYS_REMEMBERED: usize = 64;

/// LRU memo of built graphs: a linear table with a logical use clock.
/// At the default cap a scan beats hashing and keeps eviction order
/// fully deterministic (first-least-recent wins).
///
/// With the artifact store mounted the payload per entry is an mmap
/// handle (three `Arc`s over the same file), so even an evict/rebuild
/// cycle re-maps a verified file instead of re-generating the graph —
/// the memo then only amortises the digest check.
struct GraphMemo {
    cap: usize,
    tick: u64,
    entries: Vec<(GraphKey, Arc<Csr>, u64)>,
    /// Recently evicted keys (bounded); re-requesting one of these is
    /// eviction thrash — the cap is too small for the sweep's working
    /// set — and warns once per process.
    evicted: Vec<GraphKey>,
    warned_thrash: bool,
}

impl Default for GraphMemo {
    fn default() -> Self {
        GraphMemo::with_cap(graph_memo_cap())
    }
}

impl GraphMemo {
    fn with_cap(cap: usize) -> Self {
        GraphMemo {
            cap: cap.max(1),
            tick: 0,
            entries: Vec::new(),
            evicted: Vec::new(),
            warned_thrash: false,
        }
    }

    fn get(&mut self, key: &GraphKey) -> Option<Arc<Csr>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries
            .iter_mut()
            .find(|(k, ..)| k == key)
            .map(|(_, g, last_use)| {
                *last_use = tick;
                Arc::clone(g)
            })
    }

    fn insert(&mut self, key: GraphKey, g: Arc<Csr>) -> Arc<Csr> {
        // Re-check under the lock: a concurrent builder of the same
        // key may have landed first, and its Arc must win so both
        // callers share one graph.
        if let Some(g) = self.get(&key) {
            return g;
        }
        if self.evicted.contains(&key) && !self.warned_thrash {
            self.warned_thrash = true;
            eprintln!(
                "[scu-algos] graph memo thrash: rebuilding a graph evicted earlier in this \
                 sweep (cap {}); raise SCU_GRAPH_MEMO_ENTRIES if memory allows",
                self.cap
            );
        }
        if self.entries.len() >= self.cap {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (.., last_use))| *last_use)
                .map(|(i, _)| i)
                .expect("cap > 0, so a full memo has a least-recent entry");
            let (evicted_key, ..) = self.entries.swap_remove(lru);
            if self.evicted.len() >= EVICTED_KEYS_REMEMBERED {
                self.evicted.remove(0);
            }
            self.evicted.push(evicted_key);
        }
        self.entries.push((key, Arc::clone(&g), self.tick));
        g
    }
}

/// Builds `dataset` at (`scale`, `seed`), memoised process-wide.
///
/// Generation is deterministic, so sharing is purely an optimisation:
/// every cell of a sweep reads the same immutable [`Csr`] instead of
/// regenerating it per algorithm × platform × mode combination. The
/// memo is bounded (`SCU_GRAPH_MEMO_ENTRIES`, default
/// [`GRAPH_MEMO_CAP`]); least-recently-used graphs are dropped once
/// every cell holding them finishes.
///
/// When a graph artifact store is mounted ([`mount_graph_artifacts`])
/// a memo miss goes through it: a verified on-disk artifact is mmap'd
/// zero-copy (shared with every other process mapping it); only a
/// missing or corrupt artifact triggers an actual generator run, whose
/// output is published for every later process. Artifacts are keyed
/// outside `cache_key` — a hit serves the exact bytes the in-memory
/// build would produce, so results cannot depend on the store.
pub fn shared_graph(dataset: Dataset, scale: f64, seed: u64) -> Arc<Csr> {
    static CACHE: OnceLock<Mutex<GraphMemo>> = OnceLock::new();
    scu_harness::failpoint::apply("graph-build");
    let key = (dataset, scale.to_bits(), seed);
    let cache = CACHE.get_or_init(|| Mutex::new(GraphMemo::default()));
    // Poison-tolerant: a panic injected (or hit) between the lookup
    // and the insert leaves the memo consistent, so later cells can
    // keep using it instead of dying on a poisoned lock.
    if let Some(g) = scu_harness::error::lock_unpoisoned(cache, "graph cache").get(&key) {
        return g;
    }
    // Build outside the lock: different graphs may build concurrently,
    // and a duplicate build of the same key is deterministic anyway.
    let g = Arc::new(match scu_graph::artifact::active() {
        Some(store) => store
            .load_or_build(dataset, scale, seed, || dataset.try_build(scale, seed))
            .unwrap_or_else(|e| panic!("{e}")),
        None => dataset.build(scale, seed),
    });
    scu_harness::error::lock_unpoisoned(cache, "graph cache").insert(key, g)
}

/// Mounts the graph artifact store at `dir` (or unmounts it with
/// `None`) and wires its IO failpoints (`graph-artifact-load`,
/// `graph-artifact-store`) into the harness registry. Binaries call
/// this once at startup — library code and unit tests run with the
/// store unmounted and build in memory, exactly as before.
pub fn mount_graph_artifacts(dir: Option<std::path::PathBuf>) {
    scu_graph::artifact::install_io_hook(scu_harness::failpoint::io);
    scu_graph::artifact::install(dir.map(|d| Arc::new(scu_graph::artifact::GraphStore::new(d))));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cell(mode: Mode) -> Cell {
        Cell {
            algorithm: Algorithm::Bfs,
            dataset: Dataset::Cond,
            system: SystemKind::Tx1,
            mode,
            pr_iters: 3,
            scale: 1.0 / 256.0,
            seed: 11,
            scu_config: None,
        }
    }

    #[test]
    fn id_is_readable_and_filterable() {
        assert_eq!(
            tiny_cell(Mode::ScuEnhanced).id(),
            "BFS/cond/TX1/scu-enhanced"
        );
    }

    #[test]
    fn cache_key_distinguishes_configurations() {
        let a = tiny_cell(Mode::GpuBaseline).cache_key();
        let b = tiny_cell(Mode::ScuBasic).cache_key();
        let mut c = tiny_cell(Mode::GpuBaseline);
        c.seed = 12;
        assert_ne!(a, b);
        assert_ne!(a, c.cache_key());
        assert_eq!(a, tiny_cell(Mode::GpuBaseline).cache_key());
    }

    #[test]
    fn semantic_key_ignores_timing_knobs() {
        let base = tiny_cell(Mode::ScuEnhanced);
        let mut timed = base.clone();
        let mut cfg = base.system.scu_config();
        cfg.pipeline_width *= 2;
        cfg.op_setup_cycles += 100;
        cfg.op_issue_ns *= 3.0;
        cfg.dram_efficiency = 0.5;
        cfg.freq_ghz *= 2.0;
        cfg.coalescer_in_flight += 8;
        timed.scu_config = Some(cfg);
        // Timing knobs: the semantic key is unchanged (the stored
        // trace replays), but the result-level key still misses.
        assert_eq!(base.semantic_key(), timed.semantic_key());
        assert_ne!(base.cache_key(), timed.cache_key());
        // `None` and an explicit platform-default config describe the
        // same functional machine.
        let mut explicit = base.clone();
        explicit.scu_config = Some(base.system.scu_config());
        assert_eq!(base.semantic_key(), explicit.semantic_key());
    }

    #[test]
    fn semantic_key_tracks_functional_knobs() {
        let base = tiny_cell(Mode::ScuEnhanced);
        // Hash-table geometry is functional: eviction changes which
        // duplicates the filter passes, hence the next frontier.
        let mut hash = base.clone();
        let mut cfg = base.system.scu_config();
        cfg.filter_bfs_hash.size_bytes /= 2;
        hash.scu_config = Some(cfg);
        assert_ne!(base.semantic_key(), hash.semantic_key());
        // So are the input and the algorithm.
        let mut seed = base.clone();
        seed.seed += 1;
        assert_ne!(base.semantic_key(), seed.semantic_key());
        let mut scale = base.clone();
        scale.scale /= 2.0;
        assert_ne!(base.semantic_key(), scale.semantic_key());
        let mut ds = base.clone();
        ds.dataset = Dataset::Ca;
        assert_ne!(base.semantic_key(), ds.semantic_key());
        let mut algo = base.clone();
        algo.algorithm = Algorithm::Cc;
        assert_ne!(base.semantic_key(), algo.semantic_key());
        // Launch geometry differs across platforms.
        let mut sys = base.clone();
        sys.system = SystemKind::Gtx980;
        assert_ne!(base.semantic_key(), sys.semantic_key());
    }

    #[test]
    fn semantic_key_scopes_pr_iters_and_baseline_scu_config() {
        // The iteration cap only shapes PageRank's execution.
        let mut pr = tiny_cell(Mode::ScuEnhanced);
        pr.algorithm = Algorithm::PageRank;
        let mut pr2 = pr.clone();
        pr2.pr_iters += 1;
        assert_ne!(pr.semantic_key(), pr2.semantic_key());
        let bfs = tiny_cell(Mode::ScuEnhanced);
        let mut bfs2 = bfs.clone();
        bfs2.pr_iters += 1;
        assert_eq!(bfs.semantic_key(), bfs2.semantic_key());
        // The GPU baseline never consults the SCU, hash tables
        // included — an SCU override cannot change what it computes.
        let gpu = tiny_cell(Mode::GpuBaseline);
        let mut gpu2 = gpu.clone();
        let mut cfg = gpu.system.scu_config();
        cfg.filter_bfs_hash.size_bytes /= 2;
        gpu2.scu_config = Some(cfg);
        assert_eq!(gpu.semantic_key(), gpu2.semantic_key());
    }

    #[test]
    fn functional_variants_share_traces_where_kernels_agree() {
        // BFS filtering-only and enhanced run identical kernel
        // bodies — only SCU timing differs — so they share one trace.
        let a = tiny_cell(Mode::ScuFilteringOnly);
        let b = tiny_cell(Mode::ScuEnhanced);
        assert_eq!(a.semantic_key(), b.semantic_key());
        // SSSP's enhanced mode changes the frontier itself.
        let mut sa = a.clone();
        sa.algorithm = Algorithm::Sssp;
        let mut sb = b.clone();
        sb.algorithm = Algorithm::Sssp;
        assert_ne!(sa.semantic_key(), sb.semantic_key());
        // Compaction-only and baseline never share with filtering.
        assert_ne!(tiny_cell(Mode::ScuBasic).semantic_key(), a.semantic_key());
        assert_ne!(
            tiny_cell(Mode::GpuBaseline).semantic_key(),
            a.semantic_key()
        );
    }

    #[test]
    fn warm_trace_replay_reproduces_the_cold_result() {
        use std::collections::HashMap;
        use std::sync::Mutex;

        #[derive(Default)]
        struct MapStore(Mutex<HashMap<String, Vec<u8>>>);
        impl scu_gpu::trace_cache::TraceStore for MapStore {
            fn load(&self, key: &str) -> scu_gpu::trace_cache::TraceLoad {
                match self.0.lock().unwrap().get(key) {
                    Some(b) => scu_gpu::trace_cache::TraceLoad::Data(b.clone()),
                    None => scu_gpu::trace_cache::TraceLoad::Missing,
                }
            }
            fn store(&self, key: &str, bytes: &[u8]) -> bool {
                self.0
                    .lock()
                    .unwrap()
                    .insert(key.to_string(), bytes.to_vec());
                true
            }
        }

        let cell = tiny_cell(Mode::ScuEnhanced);
        let plain = cell.run();
        let store = Arc::new(MapStore::default());
        scu_gpu::trace_cache::install(Some(store.clone()));
        let cold = cell.run();
        let o = scu_gpu::trace_cache::last_cell_outcome().expect("session ran");
        assert!(!o.hit && o.stored && !o.poisoned);
        assert_eq!(o.key, cell.semantic_key_string());
        let warm = cell.run();
        let o2 = scu_gpu::trace_cache::last_cell_outcome().expect("session ran");
        scu_gpu::trace_cache::install(None);
        assert!(o2.hit && o2.bytes_replayed > 0);
        // Byte-identical simulated metrics, answers, and timelines
        // across plain / cold-recording / warm-replay execution.
        assert_eq!(plain, cold);
        assert_eq!(plain, warm);
    }

    #[test]
    fn result_roundtrips_through_json() {
        let res = tiny_cell(Mode::ScuBasic).run();
        let value = serde_json::to_value(&res);
        let back = CellResult::from_value(&value).unwrap();
        assert_eq!(res, back);
        assert!(res.values_len > 0);
    }

    #[test]
    fn answers_agree_across_modes_via_fingerprint() {
        let base = tiny_cell(Mode::GpuBaseline).run();
        let scu = tiny_cell(Mode::ScuEnhanced).run();
        assert_eq!(base.values_len, scu.values_len);
        assert_eq!(base.values_fnv, scu.values_fnv);
    }

    #[test]
    fn shared_graph_is_memoised() {
        let a = shared_graph(Dataset::Cond, 1.0 / 256.0, 7);
        let b = shared_graph(Dataset::Cond, 1.0 / 256.0, 7);
        assert!(Arc::ptr_eq(&a, &b));
        let c = shared_graph(Dataset::Cond, 1.0 / 256.0, 8);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn graph_memo_caps_and_evicts_least_recent() {
        // Explicit cap: the default reads SCU_GRAPH_MEMO_ENTRIES, and
        // process env must not leak into this test (or vice versa).
        let mut memo = GraphMemo::with_cap(GRAPH_MEMO_CAP);
        let g = Arc::new(Dataset::Ca.build(1.0 / 512.0, 1));
        let cap = GRAPH_MEMO_CAP as u64;
        for i in 0..cap + 3 {
            memo.insert((Dataset::Ca, i, 1), Arc::clone(&g));
        }
        assert_eq!(memo.entries.len(), GRAPH_MEMO_CAP);
        // The three oldest keys were evicted; the newest survive.
        assert!(memo.get(&(Dataset::Ca, 0, 1)).is_none());
        assert!(memo.get(&(Dataset::Ca, 2, 1)).is_none());
        assert!(memo.get(&(Dataset::Ca, cap + 2, 1)).is_some());
        // Touching the current least-recent key shields it from the
        // next eviction.
        let keep = (Dataset::Ca, 3, 1);
        assert!(memo.get(&keep).is_some());
        memo.insert((Dataset::Ca, 999, 1), Arc::clone(&g));
        assert_eq!(memo.entries.len(), GRAPH_MEMO_CAP);
        assert!(memo.get(&keep).is_some());
    }

    #[test]
    fn graph_memo_warns_once_on_eviction_thrash() {
        let mut memo = GraphMemo::with_cap(2);
        let g = Arc::new(Dataset::Ca.build(1.0 / 512.0, 1));
        for i in 0..3u64 {
            memo.insert((Dataset::Ca, i, 1), Arc::clone(&g));
        }
        // Key 0 was evicted; re-inserting it is thrash.
        assert!(!memo.warned_thrash);
        memo.insert((Dataset::Ca, 0, 1), Arc::clone(&g));
        assert!(memo.warned_thrash);
        // The evicted ring stays bounded under sustained cycling.
        for i in 10..10 + 2 * EVICTED_KEYS_REMEMBERED as u64 {
            memo.insert((Dataset::Ca, i, 1), Arc::clone(&g));
        }
        assert!(memo.evicted.len() <= EVICTED_KEYS_REMEMBERED);
    }

    #[test]
    fn graph_memo_cap_env_parsing() {
        // The default (no env contract in unit tests) is positive and
        // with_cap clamps zero to one.
        assert!(graph_memo_cap() >= 1);
        assert_eq!(GraphMemo::with_cap(0).cap, 1);
    }
}

//! The pure experiment-cell entry point used by the parallel harness.
//!
//! One [`Cell`] is one point of the reproduction matrix: algorithm ×
//! dataset × platform × machine mode, plus the scaling knobs. A cell
//! owns its entire configuration, so running it is a pure function of
//! the struct — no globals, no environment reads — which is what lets
//! the harness run cells on worker threads and cache their results
//! content-addressed.
//!
//! One deliberate exception: the process-global
//! [`scu_gpu::SimThreads`] knob, which fans the GPU engine's timing
//! reconstruction out across per-SM lanes. It is *not* part of the
//! cell configuration or [`Cell::cache_key`] because the engine
//! guarantees byte-identical results at any thread count — the knob
//! changes how fast a cell simulates, never what it produces.
//!
//! The serialised cell configuration (plus [`MODEL_VERSION`]) *is* the
//! cache key; [`CellResult`] is the cached value. Raw per-node answer
//! vectors are too large to cache, so results carry their length and a
//! FNV-1a fingerprint instead — enough to assert cross-mode agreement.

use std::sync::{Arc, Mutex, OnceLock};

use scu_core::ScuConfig;
use scu_graph::{Csr, Dataset};
use scu_trace::{PhaseRow, Timeline};
use serde::{Deserialize, Serialize};
use serde_json::Value;

use crate::report::RunReport;
use crate::runner::{run_configured, Algorithm, Mode, RunOutput};
use crate::system::SystemKind;

/// Version tag of the simulator model, mixed into every cache key.
///
/// Bump this whenever a change alters any simulated metric or answer
/// (timing model, energy model, generators, algorithms); cached
/// results from older versions then simply stop matching and are
/// recomputed. Leave it alone for pure refactors.
pub const MODEL_VERSION: &str = "scu-sim-2";

/// One fully-specified point of the experiment matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Graph primitive to run.
    pub algorithm: Algorithm,
    /// Input graph class.
    pub dataset: Dataset,
    /// Simulated platform.
    pub system: SystemKind,
    /// Machine variant (baseline GPU or an SCU configuration).
    pub mode: Mode,
    /// PageRank iteration cap (ignored by the other algorithms).
    pub pr_iters: u32,
    /// Dataset size as a fraction of the published node count.
    pub scale: f64,
    /// Seed for the synthetic graph generator.
    pub seed: u64,
    /// SCU parameter override for ablations; `None` means the
    /// platform's Table 2 configuration.
    pub scu_config: Option<ScuConfig>,
}

impl Cell {
    /// Stable human-readable identifier, used for progress lines and
    /// `--filter` matching: `BFS/cond/GTX980/scu-enhanced`.
    pub fn id(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.algorithm.name(),
            self.dataset.name(),
            self.system.name(),
            self.mode.name()
        )
    }

    /// The content-addressed cache key: the full configuration plus
    /// the model version.
    pub fn cache_key(&self) -> Value {
        Value::Object(vec![
            ("model".to_string(), Value::Str(MODEL_VERSION.to_string())),
            ("cell".to_string(), serde_json::to_value(self)),
        ])
    }

    /// Runs the cell: builds (or reuses) the input graph, simulates,
    /// and summarises. Pure with respect to the configuration — equal
    /// cells produce equal results on any thread, in any order.
    pub fn run(&self) -> CellResult {
        // Failpoint site for fault-injection tests: with
        // `SCU_FAILPOINTS=cell-run=…` armed, a cell can be made to
        // panic, stall, or flake deterministically.
        scu_harness::failpoint::apply("cell-run");
        let g = shared_graph(self.dataset, self.scale, self.seed);
        let out = run_configured(
            self.algorithm,
            &g,
            self.system,
            self.mode,
            self.pr_iters,
            self.scu_config.as_ref(),
        );
        CellResult::new(self.id(), &out)
    }

    /// [`Cell::run`], also handing back the full event timeline the
    /// run recorded — for trace export, where the summary alone is
    /// not enough.
    pub fn run_traced(&self) -> (CellResult, Timeline) {
        scu_harness::failpoint::apply("cell-run");
        let g = shared_graph(self.dataset, self.scale, self.seed);
        let out = run_configured(
            self.algorithm,
            &g,
            self.system,
            self.mode,
            self.pr_iters,
            self.scu_config.as_ref(),
        );
        let result = CellResult::new(self.id(), &out);
        (result, out.timeline)
    }

    /// [`Cell::run`] as a JSON value — the closure body the harness
    /// executes and caches.
    pub fn run_value(&self) -> Value {
        serde_json::to_value(&self.run())
    }
}

/// What one cell produced: the measurement report plus a fingerprint
/// of the algorithm's answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// The cell's [`Cell::id`].
    pub id: String,
    /// Length of the per-node answer vector.
    pub values_len: u64,
    /// FNV-1a fingerprint of the answer values (little-endian u64s) —
    /// byte-identical answers across modes hash identically.
    pub values_fnv: u64,
    /// The full measurement report.
    pub report: RunReport,
    /// Order-sensitive digest of the run's event timeline. Two runs
    /// of the same cell on the same model version emit byte-identical
    /// event streams, so the digest doubles as a determinism check
    /// across threads, processes, and `--resume` boundaries.
    pub timeline_digest: u64,
    /// Per-iteration phase breakdown derived from the timeline —
    /// small enough to cache, unlike the raw event stream.
    pub phases: Vec<PhaseRow>,
}

impl CellResult {
    /// Summarises a raw [`RunOutput`].
    pub fn new(id: String, out: &RunOutput) -> Self {
        CellResult {
            id,
            values_len: out.values.len() as u64,
            values_fnv: fnv1a_u64s(&out.values),
            report: out.report.clone(),
            timeline_digest: out.timeline.digest(),
            phases: out.timeline.phase_breakdown(),
        }
    }

    /// Parses a cached value back into a result.
    ///
    /// # Errors
    ///
    /// Returns the underlying decode error if `value` does not have
    /// this shape (e.g. a cache blob from a foreign version).
    pub fn from_value(value: &Value) -> Result<Self, serde_json::Error> {
        serde_json::from_value(value)
    }
}

/// FNV-1a over the little-endian byte stream of the values.
fn fnv1a_u64s(values: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Graph key: scale participates via its exact bit pattern.
type GraphKey = (Dataset, u64, u64);

/// Most graphs the process-wide memo retains at once.
///
/// The default matrix touches 6 datasets at one (scale, seed), so a
/// full sweep stays fully memoised; multi-scale sweeps (ablation,
/// scaling studies) evict least-recently-used graphs instead of
/// accumulating every size ever built for the life of the process.
const GRAPH_MEMO_CAP: usize = 8;

/// LRU memo of built graphs: a linear table with a logical use clock.
/// With [`GRAPH_MEMO_CAP`] entries a scan beats hashing and keeps
/// eviction order fully deterministic (first-least-recent wins).
#[derive(Default)]
struct GraphMemo {
    tick: u64,
    entries: Vec<(GraphKey, Arc<Csr>, u64)>,
}

impl GraphMemo {
    fn get(&mut self, key: &GraphKey) -> Option<Arc<Csr>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries
            .iter_mut()
            .find(|(k, ..)| k == key)
            .map(|(_, g, last_use)| {
                *last_use = tick;
                Arc::clone(g)
            })
    }

    fn insert(&mut self, key: GraphKey, g: Arc<Csr>) -> Arc<Csr> {
        // Re-check under the lock: a concurrent builder of the same
        // key may have landed first, and its Arc must win so both
        // callers share one graph.
        if let Some(g) = self.get(&key) {
            return g;
        }
        if self.entries.len() >= GRAPH_MEMO_CAP {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (.., last_use))| *last_use)
                .map(|(i, _)| i)
                .expect("cap > 0, so a full memo has a least-recent entry");
            self.entries.swap_remove(lru);
        }
        self.entries.push((key, Arc::clone(&g), self.tick));
        g
    }
}

/// Builds `dataset` at (`scale`, `seed`), memoised process-wide.
///
/// Generation is deterministic, so sharing is purely an optimisation:
/// every cell of a sweep reads the same immutable [`Csr`] instead of
/// regenerating it per algorithm × platform × mode combination. The
/// memo is bounded ([`GRAPH_MEMO_CAP`]); least-recently-used graphs
/// are dropped once every cell holding them finishes.
pub fn shared_graph(dataset: Dataset, scale: f64, seed: u64) -> Arc<Csr> {
    static CACHE: OnceLock<Mutex<GraphMemo>> = OnceLock::new();
    scu_harness::failpoint::apply("graph-build");
    let key = (dataset, scale.to_bits(), seed);
    let cache = CACHE.get_or_init(|| Mutex::new(GraphMemo::default()));
    // Poison-tolerant: a panic injected (or hit) between the lookup
    // and the insert leaves the memo consistent, so later cells can
    // keep using it instead of dying on a poisoned lock.
    if let Some(g) = scu_harness::error::lock_unpoisoned(cache, "graph cache").get(&key) {
        return g;
    }
    // Build outside the lock: different graphs may build concurrently,
    // and a duplicate build of the same key is deterministic anyway.
    let g = Arc::new(dataset.build(scale, seed));
    scu_harness::error::lock_unpoisoned(cache, "graph cache").insert(key, g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cell(mode: Mode) -> Cell {
        Cell {
            algorithm: Algorithm::Bfs,
            dataset: Dataset::Cond,
            system: SystemKind::Tx1,
            mode,
            pr_iters: 3,
            scale: 1.0 / 256.0,
            seed: 11,
            scu_config: None,
        }
    }

    #[test]
    fn id_is_readable_and_filterable() {
        assert_eq!(
            tiny_cell(Mode::ScuEnhanced).id(),
            "BFS/cond/TX1/scu-enhanced"
        );
    }

    #[test]
    fn cache_key_distinguishes_configurations() {
        let a = tiny_cell(Mode::GpuBaseline).cache_key();
        let b = tiny_cell(Mode::ScuBasic).cache_key();
        let mut c = tiny_cell(Mode::GpuBaseline);
        c.seed = 12;
        assert_ne!(a, b);
        assert_ne!(a, c.cache_key());
        assert_eq!(a, tiny_cell(Mode::GpuBaseline).cache_key());
    }

    #[test]
    fn result_roundtrips_through_json() {
        let res = tiny_cell(Mode::ScuBasic).run();
        let value = serde_json::to_value(&res);
        let back = CellResult::from_value(&value).unwrap();
        assert_eq!(res, back);
        assert!(res.values_len > 0);
    }

    #[test]
    fn answers_agree_across_modes_via_fingerprint() {
        let base = tiny_cell(Mode::GpuBaseline).run();
        let scu = tiny_cell(Mode::ScuEnhanced).run();
        assert_eq!(base.values_len, scu.values_len);
        assert_eq!(base.values_fnv, scu.values_fnv);
    }

    #[test]
    fn shared_graph_is_memoised() {
        let a = shared_graph(Dataset::Cond, 1.0 / 256.0, 7);
        let b = shared_graph(Dataset::Cond, 1.0 / 256.0, 7);
        assert!(Arc::ptr_eq(&a, &b));
        let c = shared_graph(Dataset::Cond, 1.0 / 256.0, 8);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn graph_memo_caps_and_evicts_least_recent() {
        let mut memo = GraphMemo::default();
        let g = Arc::new(Dataset::Ca.build(1.0 / 512.0, 1));
        let cap = GRAPH_MEMO_CAP as u64;
        for i in 0..cap + 3 {
            memo.insert((Dataset::Ca, i, 1), Arc::clone(&g));
        }
        assert_eq!(memo.entries.len(), GRAPH_MEMO_CAP);
        // The three oldest keys were evicted; the newest survive.
        assert!(memo.get(&(Dataset::Ca, 0, 1)).is_none());
        assert!(memo.get(&(Dataset::Ca, 2, 1)).is_none());
        assert!(memo.get(&(Dataset::Ca, cap + 2, 1)).is_some());
        // Touching the current least-recent key shields it from the
        // next eviction.
        let keep = (Dataset::Ca, 3, 1);
        assert!(memo.get(&keep).is_some());
        memo.insert((Dataset::Ca, 999, 1), Arc::clone(&g));
        assert_eq!(memo.entries.len(), GRAPH_MEMO_CAP);
        assert!(memo.get(&keep).is_some());
    }
}

//! Experiment configuration and matrix planning.
//!
//! Lives here (rather than in `scu-bench`) because every consumer of
//! the measurement matrix — the figure renderers in `scu-bench`, the
//! JSON exporter, and the sweep server in `scu-server` — must plan
//! byte-identical [`Cell`]s from the same knobs. `scu-bench` re-exports
//! [`ExperimentConfig`] for compatibility.

use scu_core::{HashTableConfig, ScuConfig};
use scu_graph::Dataset;

use crate::cell::Cell;
use crate::runner::{Algorithm, Mode};
use crate::system::SystemKind;

/// All four machine variants, in the paper's order — the mode set the
/// full reproduction matrix sweeps.
pub const ALL_MODES: [Mode; 4] = [
    Mode::GpuBaseline,
    Mode::ScuBasic,
    Mode::ScuFilteringOnly,
    Mode::ScuEnhanced,
];

/// Knobs shared by all experiments.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Fraction of the published dataset node counts to generate
    /// (1.0 = full Table 5 sizes).
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
    /// Datasets included.
    pub datasets: Vec<Dataset>,
    /// Algorithms included (defaults to [`Algorithm::EXTENDED`]: the
    /// paper's three primitives plus the CC and k-core extensions).
    pub algos: Vec<Algorithm>,
    /// PageRank iteration cap for experiment runs.
    pub pr_iters: u32,
    /// Scale the SCU's filtering/grouping hash tables with the
    /// datasets, preserving the paper's hash-to-graph capacity ratio
    /// (Table 2 sizes the tables for the full-size graphs; running
    /// 1/16-scale graphs against full-size tables would make the
    /// filter unrealistically collision-free).
    pub scale_hash: bool,
}

impl ExperimentConfig {
    /// The default experiment scale: 1/16 of published sizes — large
    /// enough that node arrays exceed the TX1 L2 and frontier shapes
    /// match the full-size regime, small enough to run the entire
    /// figure suite in minutes.
    pub fn new() -> Self {
        ExperimentConfig {
            scale: 1.0 / 16.0,
            seed: 42,
            datasets: Dataset::ALL.to_vec(),
            algos: Algorithm::EXTENDED.to_vec(),
            pr_iters: 5,
            scale_hash: true,
        }
    }

    /// The SCU configuration for `kind` under this experiment's scale:
    /// hash capacities shrink with the graphs when
    /// [`ExperimentConfig::scale_hash`] is set.
    pub fn scu_config(&self, kind: SystemKind) -> ScuConfig {
        let mut cfg = kind.scu_config();
        if self.scale_hash {
            for h in [
                &mut cfg.filter_bfs_hash,
                &mut cfg.filter_sssp_hash,
                &mut cfg.grouping_hash,
            ] {
                scale_hash_geometry(h, self.scale);
            }
        }
        cfg
    }

    /// Reads `SCU_SCALE`, `SCU_SEED` and `SCU_PR_ITERS` from the
    /// environment, falling back to [`ExperimentConfig::new`].
    pub fn from_env() -> Self {
        let mut cfg = ExperimentConfig::new();
        if let Some(s) = std::env::var("SCU_SCALE").ok().and_then(|v| v.parse().ok()) {
            cfg.scale = s;
        }
        if let Some(s) = std::env::var("SCU_SEED").ok().and_then(|v| v.parse().ok()) {
            cfg.seed = s;
        }
        if let Some(s) = std::env::var("SCU_PR_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            cfg.pr_iters = s;
        }
        cfg
    }

    /// A reduced configuration for unit tests and Criterion benches:
    /// 1/128 scale, two structurally distinct datasets.
    pub fn tiny() -> Self {
        ExperimentConfig {
            scale: 1.0 / 128.0,
            seed: 42,
            datasets: vec![Dataset::Cond, Dataset::Kron],
            algos: Algorithm::EXTENDED.to_vec(),
            pr_iters: 3,
            scale_hash: true,
        }
    }

    /// Checks that every dataset in the matrix can be built at this
    /// scale. CLIs call this right after parsing so an out-of-range
    /// `SCU_SCALE` is a one-line error (exit 2) instead of a panic
    /// mid-sweep.
    ///
    /// # Errors
    ///
    /// Returns the first dataset's range violation, one line.
    pub fn validate(&self) -> Result<(), String> {
        for &d in &self.datasets {
            d.validate_scale(self.scale)
                .map_err(|e| format!("dataset {d}: {e}"))?;
        }
        Ok(())
    }

    /// The fully-specified [`Cell`] for one (algorithm, dataset,
    /// system, mode) point under this configuration — the single
    /// definition every entry path (CLI, JSON export, sweep server)
    /// shares, so their cache keys and results are byte-identical.
    pub fn cell(
        &self,
        algorithm: Algorithm,
        dataset: Dataset,
        system: SystemKind,
        mode: Mode,
    ) -> Cell {
        Cell {
            algorithm,
            dataset,
            system,
            mode,
            pr_iters: self.pr_iters,
            scale: self.scale,
            seed: self.seed,
            scu_config: Some(self.scu_config(system)),
        }
    }
}

/// Plans the experiment grid: one [`Cell`] per (dataset × algorithm ×
/// system × mode) combination, in that nesting order. `filter` keeps
/// only cells whose [`Cell::id`] contains the substring.
pub fn plan_cells(cfg: &ExperimentConfig, modes: &[Mode], filter: Option<&str>) -> Vec<Cell> {
    let mut cells = Vec::new();
    for &dataset in &cfg.datasets {
        for &algorithm in &cfg.algos {
            for system in SystemKind::ALL {
                for &mode in modes {
                    let cell = cfg.cell(algorithm, dataset, system, mode);
                    if filter.is_none_or(|f| cell.id().contains(f)) {
                        cells.push(cell);
                    }
                }
            }
        }
    }
    cells
}

/// Scales a hash geometry to `scale` of its capacity, rounded to whole
/// sets (at least one).
fn scale_hash_geometry(h: &mut HashTableConfig, scale: f64) {
    let unit = (h.ways * h.entry_bytes) as u64;
    let sets = ((h.size_bytes as f64 * scale / unit as f64).round() as u64).max(1);
    h.size_bytes = sets * unit;
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_all_datasets() {
        let c = ExperimentConfig::new();
        assert_eq!(c.datasets.len(), 6);
        assert_eq!(
            c.algos.len(),
            5,
            "paper's three primitives plus CC and k-core"
        );
        assert!(c.scale > 0.0 && c.scale <= 1.0);
    }

    #[test]
    fn scaled_hash_preserves_geometry() {
        let cfg = ExperimentConfig::new();
        let scu = cfg.scu_config(SystemKind::Tx1);
        scu.validate().unwrap();
        let full = SystemKind::Tx1.scu_config();
        assert!(scu.filter_bfs_hash.size_bytes < full.filter_bfs_hash.size_bytes);
        let ratio = scu.filter_bfs_hash.size_bytes as f64 / full.filter_bfs_hash.size_bytes as f64;
        assert!((ratio - cfg.scale).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn hash_scaling_can_be_disabled() {
        let mut cfg = ExperimentConfig::new();
        cfg.scale_hash = false;
        let scu = cfg.scu_config(SystemKind::Gtx980);
        assert_eq!(scu, SystemKind::Gtx980.scu_config());
    }

    #[test]
    fn tiny_is_smaller() {
        let c = ExperimentConfig::tiny();
        assert!(c.scale < ExperimentConfig::new().scale);
        assert!(c.datasets.len() < 6);
    }

    #[test]
    fn full_plan_covers_240_cells() {
        let cells = plan_cells(&ExperimentConfig::new(), &ALL_MODES, None);
        assert_eq!(
            cells.len(),
            240,
            "6 datasets x 5 algos x 2 systems x 4 modes"
        );
        let filtered = plan_cells(&ExperimentConfig::new(), &ALL_MODES, Some("BFS/kron"));
        assert!(filtered.iter().all(|c| c.id().contains("BFS/kron")));
        assert_eq!(filtered.len(), 8);
    }

    #[test]
    fn validate_catches_out_of_range_scales() {
        let mut cfg = ExperimentConfig::new();
        assert!(cfg.validate().is_ok());
        cfg.scale = 16.0; // Kronecker exponent 22: allowed.
        assert!(cfg.validate().is_ok());
        cfg.scale = -3.0;
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("positive"), "{err}");
        cfg.scale = 1.0e9;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn planned_cells_carry_scaled_scu_configs() {
        let cfg = ExperimentConfig::tiny();
        let cells = plan_cells(&cfg, &ALL_MODES, None);
        assert!(cells
            .iter()
            .all(|c| c.scu_config == Some(cfg.scu_config(c.system))));
    }
}

//! Per-run measurement collection — the raw material of every figure
//! in §6.
//!
//! Since the trace spine landed, a [`RunReport`] is a *derived view*:
//! [`RunReport::from_timeline`] folds a finished
//! [`scu_trace::Timeline`] into the same per-phase totals the
//! per-launch [`RunReport::add_kernel`] accumulation used to produce,
//! bit-identically (the folds replay the identical merge sequence).

use scu_core::stats::ScuStats;
use scu_energy::{EnergyBreakdown, EnergyModel};
use scu_gpu::stats::KernelStats;
use scu_trace::Timeline;
use serde::{Deserialize, Serialize};

use crate::system::SystemKind;

/// How a GPU kernel launch is classified for the Figure 1 breakdown
/// (re-exported from `scu-trace`, where the phase markers live).
pub use scu_trace::Phase;

/// Everything measured in one end-to-end algorithm run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Algorithm name ("bfs", "sssp", "pr").
    pub algorithm: &'static str,
    /// Platform the run executed on.
    pub system: SystemKind,
    /// Whether an SCU was present.
    pub scu_present: bool,
    /// Frontier iterations executed.
    pub iterations: u32,
    /// Accumulated processing-phase kernels.
    pub gpu_processing: KernelStats,
    /// Accumulated compaction-phase kernels (baseline GPU only).
    pub gpu_compaction: KernelStats,
    /// Accumulated SCU operations.
    pub scu: ScuStats,
    /// Full energy breakdown (set by [`RunReport::finalize`]).
    pub energy: EnergyBreakdown,
    /// Peak DRAM bandwidth of the platform, bytes/s (for Figure 13).
    pub peak_bw_bytes_per_sec: f64,
}

impl RunReport {
    /// Creates an empty report.
    pub fn new(algorithm: &'static str, system: SystemKind, scu_present: bool) -> Self {
        RunReport {
            algorithm,
            system,
            scu_present,
            iterations: 0,
            gpu_processing: KernelStats::default(),
            gpu_compaction: KernelStats::default(),
            scu: ScuStats::default(),
            energy: EnergyBreakdown::default(),
            peak_bw_bytes_per_sec: 0.0,
        }
    }

    /// Derives a finished report from a recorded timeline: kernel and
    /// SCU totals are folded in event order (bit-identical to live
    /// accumulation), iteration count is the highest recorded
    /// iteration, and the energy breakdown is computed at the end as
    /// [`RunReport::finalize`] always has.
    pub fn from_timeline(
        tl: &Timeline,
        system: SystemKind,
        energy: &EnergyModel,
        peak_bw_bytes_per_sec: f64,
    ) -> Self {
        let (gpu_processing, gpu_compaction) = tl.kernel_totals();
        let mut report = RunReport {
            algorithm: tl.algo,
            system,
            scu_present: tl.scu_present,
            iterations: tl.iterations(),
            gpu_processing,
            gpu_compaction,
            scu: tl.scu_totals(),
            energy: EnergyBreakdown::default(),
            peak_bw_bytes_per_sec: 0.0,
        };
        report.finalize(energy, peak_bw_bytes_per_sec);
        report
    }

    /// Folds one kernel launch into the report under `phase`.
    pub fn add_kernel(&mut self, phase: Phase, stats: &KernelStats) {
        match phase {
            Phase::Processing => self.gpu_processing.merge(stats),
            Phase::Compaction => self.gpu_compaction.merge(stats),
        }
    }

    /// Total GPU time (both phases), ns.
    pub fn gpu_time_ns(&self) -> f64 {
        self.gpu_processing.time_ns + self.gpu_compaction.time_ns
    }

    /// End-to-end time: GPU kernels plus SCU operations, serialised as
    /// in the paper's execution model (§3: the GPU resumes once the
    /// SCU operation concludes), ns.
    pub fn total_time_ns(&self) -> f64 {
        self.gpu_time_ns() + self.scu.time_ns
    }

    /// Fraction of time in stream compaction (GPU compaction kernels +
    /// SCU ops), in `[0, 1]` — the Figure 1 metric.
    pub fn compaction_fraction(&self) -> f64 {
        let t = self.total_time_ns();
        if t == 0.0 {
            0.0
        } else {
            (self.gpu_compaction.time_ns + self.scu.time_ns) / t
        }
    }

    /// Dynamic GPU thread instructions — the §6.3 workload metric.
    pub fn gpu_thread_insts(&self) -> u64 {
        self.gpu_processing.thread_insts + self.gpu_compaction.thread_insts
    }

    /// Transactions per GPU memory instruction (lower = better
    /// coalescing) over processing kernels — the Figure 12 metric.
    pub fn gpu_coalescing(&self) -> f64 {
        self.gpu_processing.transactions_per_mem_slot()
    }

    /// Total DRAM bytes moved by GPU and SCU.
    pub fn dram_bytes(&self) -> u64 {
        self.gpu_processing.mem.dram.bytes
            + self.gpu_compaction.mem.dram.bytes
            + self.scu.mem.dram.bytes
    }

    /// Achieved fraction of peak DRAM bandwidth, in `[0, 1]` — the
    /// Figure 13 metric.
    pub fn bandwidth_utilization(&self) -> f64 {
        let t = self.total_time_ns();
        if t == 0.0 || self.peak_bw_bytes_per_sec == 0.0 {
            return 0.0;
        }
        let achieved = self.dram_bytes() as f64 / (t * 1e-9);
        achieved / self.peak_bw_bytes_per_sec
    }

    /// Computes the energy breakdown from the accumulated statistics.
    pub fn finalize(&mut self, energy: &EnergyModel, peak_bw_bytes_per_sec: f64) {
        self.peak_bw_bytes_per_sec = peak_bw_bytes_per_sec;
        let mut gpu_total = self.gpu_processing;
        gpu_total.merge(&self.gpu_compaction);
        self.energy = energy.breakdown(&gpu_total, &self.scu, self.total_time_ns());
    }

    /// Speedup of this run relative to `baseline` (>1 means faster).
    pub fn speedup_vs(&self, baseline: &RunReport) -> f64 {
        baseline.total_time_ns() / self.total_time_ns()
    }

    /// Energy-reduction factor relative to `baseline` (>1 means less
    /// energy).
    pub fn energy_reduction_vs(&self, baseline: &RunReport) -> f64 {
        baseline.energy.total_pj() / self.energy.total_pj()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(time_ns: f64, insts: u64) -> KernelStats {
        KernelStats {
            time_ns,
            thread_insts: insts,
            launches: 1,
            ..Default::default()
        }
    }

    #[test]
    fn phases_accumulate_separately() {
        let mut r = RunReport::new("bfs", SystemKind::Tx1, false);
        r.add_kernel(Phase::Processing, &kernel(10.0, 100));
        r.add_kernel(Phase::Compaction, &kernel(30.0, 50));
        assert_eq!(r.gpu_time_ns(), 40.0);
        assert!((r.compaction_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(r.gpu_thread_insts(), 150);
    }

    #[test]
    fn scu_time_counts_into_total_and_compaction() {
        let mut r = RunReport::new("bfs", SystemKind::Tx1, true);
        r.add_kernel(Phase::Processing, &kernel(60.0, 100));
        r.scu.time_ns = 40.0;
        assert_eq!(r.total_time_ns(), 100.0);
        assert!((r.compaction_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn speedup_and_energy_reduction() {
        let mut base = RunReport::new("bfs", SystemKind::Tx1, false);
        base.add_kernel(Phase::Processing, &kernel(100.0, 0));
        base.energy.gpu_dynamic_pj = 200.0;
        let mut fast = RunReport::new("bfs", SystemKind::Tx1, true);
        fast.add_kernel(Phase::Processing, &kernel(50.0, 0));
        fast.energy.gpu_dynamic_pj = 50.0;
        assert!((fast.speedup_vs(&base) - 2.0).abs() < 1e-12);
        assert!((fast.energy_reduction_vs(&base) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_utilization_bounds() {
        let mut r = RunReport::new("pr", SystemKind::Tx1, false);
        assert_eq!(r.bandwidth_utilization(), 0.0);
        r.add_kernel(Phase::Processing, &kernel(1000.0, 0));
        r.gpu_processing.mem.dram.bytes = 12_800;
        r.peak_bw_bytes_per_sec = 25.6e9;
        // 12.8 KB in 1 us = 12.8 GB/s = 50% of 25.6 GB/s.
        assert!((r.bandwidth_utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = RunReport::new("sssp", SystemKind::Gtx980, false);
        assert_eq!(r.total_time_ns(), 0.0);
        assert_eq!(r.compaction_fraction(), 0.0);
        assert_eq!(r.gpu_coalescing(), 0.0);
    }
}

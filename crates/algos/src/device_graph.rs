//! CSR graph resident in simulated device memory.

use scu_gpu::buffer::{DeviceAllocator, DeviceArray};
use scu_graph::Csr;

/// The device-side copy of a [`Csr`] graph: the three CSR arrays of
/// the paper's Figure 2b, each a [`DeviceArray`] with stable simulated
/// addresses.
#[derive(Debug)]
pub struct DeviceGraph {
    /// `row_offsets[v]..row_offsets[v+1]` spans node v's out-edges.
    pub row_offsets: DeviceArray<u32>,
    /// Edge destinations.
    pub edges: DeviceArray<u32>,
    /// Edge weights, parallel to `edges`.
    pub weights: DeviceArray<u32>,
    num_nodes: usize,
}

impl DeviceGraph {
    /// Uploads `g` into simulated device memory.
    pub fn upload(alloc: &mut DeviceAllocator, g: &Csr) -> Self {
        DeviceGraph {
            row_offsets: DeviceArray::from_vec(alloc, g.row_offsets().to_vec()),
            edges: DeviceArray::from_vec(alloc, g.edges().to_vec()),
            weights: DeviceArray::from_vec(alloc, g.weights().to_vec()),
            num_nodes: g.num_nodes(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scu_graph::GraphBuilder;

    #[test]
    fn upload_preserves_arrays() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 4).add_edge(0, 2, 5).add_edge(2, 0, 6);
        let g = b.build();
        let mut alloc = DeviceAllocator::new();
        let dg = DeviceGraph::upload(&mut alloc, &g);
        assert_eq!(dg.num_nodes(), 3);
        assert_eq!(dg.num_edges(), 3);
        assert_eq!(dg.row_offsets.as_slice(), g.row_offsets());
        assert_eq!(dg.edges.as_slice(), g.edges());
        assert_eq!(dg.weights.as_slice(), g.weights());
    }

    #[test]
    fn arrays_have_distinct_addresses() {
        let g = GraphBuilder::new(2).build();
        let mut alloc = DeviceAllocator::new();
        let dg = DeviceGraph::upload(&mut alloc, &g);
        assert_ne!(dg.row_offsets.base(), dg.edges.base());
        assert_ne!(dg.edges.base(), dg.weights.base());
    }
}

//! Baseline GPU k-core peeling: a degree-compare mark kernel plus the
//! usual scan/scatter compaction per round.

use scu_gpu::buffer::DeviceArray;
use scu_graph::Csr;
use scu_trace::{IterGuard, PhaseGuard};

use crate::device_graph::DeviceGraph;
use crate::kernels::{edge_slot_map_into, gpu_exclusive_scan_into, ScanScratch};
use crate::report::{Phase, RunReport};
use crate::system::System;

use super::REMOVED;

/// Runs baseline GPU peeling; returns per-node coreness and the
/// measured report.
pub fn run(sys: &mut System, g: &Csr) -> (Vec<u32>, RunReport) {
    sys.begin_trace("kcore", false);
    let dg = DeviceGraph::upload(&mut sys.alloc, g);
    let n = g.num_nodes();
    let m = g.num_edges().max(1);

    let mut support: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, n);
    let mut core: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, n);
    let mut flags: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, n.max(1));
    let mut rf: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, n.max(1));
    let mut indexes: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, n.max(1));
    let mut counts: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, n.max(1));
    let mut ef: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, m);

    // Initial support = in-degree, computed with one atomic pass over
    // the edge array (the standard histogram kernel).
    {
        let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
        sys.gpu.run(
            &mut sys.mem,
            "kcore-support-init",
            g.num_edges(),
            |tid, ctx| {
                let w = ctx.load(&dg.edges, tid) as usize;
                ctx.atomic_rmw(&mut support, w, |x| x + 1);
            },
        );
    }

    let mut alive = n;
    let mut k = 1u32;
    let mut iter = 0u32;

    // Host staging reused across iterations so the loop body performs
    // no host allocation.
    let mut scan = ScanScratch::default();
    let mut rows: Vec<u32> = Vec::new();
    let mut pos: Vec<u32> = Vec::new();

    while alive > 0 {
        assert!(k as usize <= n + 2, "peeling failed to terminate");
        iter += 1;
        let _iter = IterGuard::new(sys.probe(), iter);

        // ---- Mark: support < k (removed nodes sit at REMOVED). ----
        {
            let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
            sys.gpu.run(&mut sys.mem, "kcore-mark", n, |tid, ctx| {
                let sup = ctx.load(&support, tid);
                ctx.alu(1);
                ctx.store(&mut flags, tid, (sup < k) as u32);
            });
        }

        // ---- Compact the removal frontier (compaction). ----
        let (offsets, kept) = gpu_exclusive_scan_into(sys, &flags, n, &mut scan);
        {
            let _p = PhaseGuard::new(sys.probe(), Phase::Compaction);
            sys.gpu.run(&mut sys.mem, "kcore-scatter", n, |tid, ctx| {
                if ctx.load(&flags, tid) != 0 {
                    let off = ctx.load(&offsets, tid) as usize;
                    ctx.store(&mut rf, off, tid as u32);
                }
            });
        }

        let kept = kept as usize;
        if kept == 0 {
            k += 1;
            continue;
        }
        alive -= kept;

        // ---- Remove + prepare expansion (processing). ----
        {
            let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
            sys.gpu.run(&mut sys.mem, "kcore-remove", kept, |tid, ctx| {
                let v = ctx.load(&rf, tid) as usize;
                ctx.store(&mut support, v, REMOVED);
                ctx.store(&mut core, v, k - 1);
                let lo = ctx.load(&dg.row_offsets, v);
                let hi = ctx.load(&dg.row_offsets, v + 1);
                ctx.alu(1);
                ctx.store(&mut indexes, tid, lo);
                ctx.store(&mut counts, tid, hi - lo);
            });
        }

        // ---- Gather out-edges of removed nodes (compaction). ----
        let (eoff, total) = gpu_exclusive_scan_into(sys, &counts, kept, &mut scan);
        let total = total as usize;
        edge_slot_map_into(&indexes, &counts, kept, &mut rows, &mut pos);
        {
            let _p = PhaseGuard::new(sys.probe(), Phase::Compaction);
            sys.gpu.run(&mut sys.mem, "kcore-gather", total, |e, ctx| {
                ctx.alu(3);
                let row = rows[e] as usize;
                ctx.load(&eoff, row);
                let p = pos[e] as usize;
                let w = ctx.load(&dg.edges, p);
                ctx.store(&mut ef, e, w);
            });
        }

        // ---- Decrement targets' support (processing). ----
        {
            let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
            sys.gpu
                .run(&mut sys.mem, "kcore-decrement", total, |tid, ctx| {
                    let w = ctx.load(&ef, tid) as usize;
                    let sup = ctx.load(&support, w);
                    if sup != REMOVED {
                        ctx.atomic_rmw(&mut support, w, |x| x.saturating_sub(1));
                    }
                    let _ = sup;
                });
        }
    }

    let report = sys.finish_trace();
    (core.into_vec(), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kcore::reference;
    use crate::system::SystemKind;
    use scu_graph::Dataset;

    #[test]
    fn matches_reference_on_datasets() {
        for d in [Dataset::Ca, Dataset::Cond, Dataset::Kron] {
            let g = d.build(1.0 / 256.0, 3);
            let mut sys = System::baseline(SystemKind::Tx1);
            let (core, _) = run(&mut sys, &g);
            assert_eq!(core, reference::coreness(&g), "dataset {d}");
        }
    }

    #[test]
    fn compaction_work_is_charged() {
        let g = Dataset::Cond.build(1.0 / 128.0, 3);
        let mut sys = System::baseline(SystemKind::Tx1);
        let (_, report) = run(&mut sys, &g);
        assert!(report.gpu_compaction.time_ns > 0.0);
        assert!(report.iterations >= 2);
    }
}

//! Exact host peeling.

use scu_graph::Csr;

use super::REMOVED;

/// In-degree-based coreness of every node: the level `k - 1` at which
/// the node was peeled (see the module docs for the exact semantics).
pub fn coreness(g: &Csr) -> Vec<u32> {
    let n = g.num_nodes();
    let mut support = vec![0u32; n];
    for (_, d, _) in g.iter_edges() {
        support[d as usize] += 1;
    }
    let mut core = vec![0u32; n];
    let mut alive = n;
    let mut k = 1u32;
    while alive > 0 {
        loop {
            let peel: Vec<u32> = (0..n as u32)
                .filter(|&v| support[v as usize] != REMOVED && support[v as usize] < k)
                .collect();
            if peel.is_empty() {
                break;
            }
            for &v in &peel {
                support[v as usize] = REMOVED;
                core[v as usize] = k - 1;
                alive -= 1;
            }
            for &v in &peel {
                for &w in g.neighbors(v) {
                    if support[w as usize] != REMOVED {
                        support[w as usize] -= 1;
                    }
                }
            }
        }
        k += 1;
        assert!(k as usize <= n + 2, "peeling failed to terminate");
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use scu_graph::GraphBuilder;

    #[test]
    fn triangle_with_tail() {
        // Triangle 0-1-2 (undirected) plus a pendant 3 attached to 0.
        let mut b = GraphBuilder::new(4);
        b.add_undirected(0, 1, 1)
            .add_undirected(1, 2, 1)
            .add_undirected(2, 0, 1);
        b.add_undirected(0, 3, 1);
        let core = coreness(&b.build());
        assert_eq!(core[3], 1, "pendant peels at level 2 -> coreness 1");
        assert_eq!(core[0], 2);
        assert_eq!(core[1], 2);
        assert_eq!(core[2], 2);
    }

    #[test]
    fn isolated_nodes_have_coreness_zero() {
        let core = coreness(&GraphBuilder::new(3).build());
        assert_eq!(core, vec![0, 0, 0]);
    }

    #[test]
    fn clique_coreness_is_degree() {
        let mut b = GraphBuilder::new(5);
        for i in 0..5u32 {
            for j in 0..5u32 {
                if i != j {
                    b.add_edge(i, j, 1);
                }
            }
        }
        let core = coreness(&b.build());
        assert!(core.iter().all(|&c| c == 4), "5-clique coreness {core:?}");
    }

    #[test]
    fn chain_peels_from_both_ends() {
        let mut b = GraphBuilder::new(4);
        b.add_undirected(0, 1, 1)
            .add_undirected(1, 2, 1)
            .add_undirected(2, 3, 1);
        let core = coreness(&b.build());
        assert!(core.iter().all(|&c| c == 1), "chain coreness {core:?}");
    }
}

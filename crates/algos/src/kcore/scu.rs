//! k-core peeling with compaction offloaded to the SCU.
//!
//! Each round uses three of the five Figure 6 operations: *Bitmask
//! Constructor* (`support < k` against the reference value k), *Data
//! Compaction* (removal frontier from the node-ID vector), and *Access
//! Expansion Compaction* (out-edges of removed nodes). The GPU keeps
//! the support-decrement and bookkeeping kernels. Peeling has no
//! duplicate-element structure for the enhanced filter to exploit, so
//! only the basic offload applies (like PR, §4.6).

use scu_core::CompareOp;
use scu_gpu::buffer::DeviceArray;
use scu_graph::Csr;
use scu_trace::{IterGuard, PhaseGuard};

use crate::device_graph::DeviceGraph;
use crate::report::{Phase, RunReport};
use crate::system::System;

use super::REMOVED;

/// Runs SCU-offloaded peeling; returns per-node coreness and the
/// measured report.
///
/// # Panics
///
/// Panics if `sys` has no SCU.
pub fn run(sys: &mut System, g: &Csr) -> (Vec<u32>, RunReport) {
    assert!(
        sys.scu.is_some(),
        "SCU k-core requires a System::with_scu platform"
    );
    sys.begin_trace("kcore", true);
    let dg = DeviceGraph::upload(&mut sys.alloc, g);
    let n = g.num_nodes();
    let m = g.num_edges().max(1);

    let mut support: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, n);
    let mut core: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, n);
    let node_ids: DeviceArray<u32> = DeviceArray::from_vec(&mut sys.alloc, (0..n as u32).collect());
    let mut flags8: DeviceArray<u8> = DeviceArray::zeroed(&mut sys.alloc, n.max(1));
    let mut rf: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, n.max(1));
    let mut indexes: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, n.max(1));
    let mut counts: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, n.max(1));
    let mut ef: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, m);

    {
        let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
        sys.gpu.run(
            &mut sys.mem,
            "kcore-support-init",
            g.num_edges(),
            |tid, ctx| {
                let w = ctx.load(&dg.edges, tid) as usize;
                ctx.atomic_rmw(&mut support, w, |x| x + 1);
            },
        );
    }

    let mut alive = n;
    let mut k = 1u32;
    let mut iter = 0u32;
    while alive > 0 {
        assert!(k as usize <= n + 2, "peeling failed to terminate");
        iter += 1;
        let _iter = IterGuard::new(sys.probe(), iter);

        // ---- SCU: bitmask + removal-frontier compaction. ----
        let kept = {
            let _p = PhaseGuard::new(sys.probe(), Phase::Compaction);
            let scu = sys.scu.as_mut().expect("checked above");
            scu.bitmask_construct(&mut sys.mem, &support, n, CompareOp::Lt, k, &mut flags8);
            scu.data_compaction_n(&mut sys.mem, &node_ids, n, Some(&flags8), None, &mut rf, 0)
                .elements_out as usize
        };

        if kept == 0 {
            k += 1;
            continue;
        }
        alive -= kept;

        // ---- Remove + prepare expansion (processing). ----
        {
            let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
            sys.gpu.run(&mut sys.mem, "kcore-remove", kept, |tid, ctx| {
                let v = ctx.load(&rf, tid) as usize;
                ctx.store(&mut support, v, REMOVED);
                ctx.store(&mut core, v, k - 1);
                let lo = ctx.load(&dg.row_offsets, v);
                let hi = ctx.load(&dg.row_offsets, v + 1);
                ctx.alu(1);
                ctx.store(&mut indexes, tid, lo);
                ctx.store(&mut counts, tid, hi - lo);
            });
        }

        // ---- SCU: expand out-edges of the removed nodes. ----
        let total = {
            let _p = PhaseGuard::new(sys.probe(), Phase::Compaction);
            let scu = sys.scu.as_mut().expect("checked above");
            scu.access_expansion_compaction(
                &mut sys.mem,
                &dg.edges,
                &indexes,
                &counts,
                kept,
                None,
                None,
                &mut ef,
            )
            .elements_out as usize
        };

        // ---- Decrement targets' support (processing). ----
        {
            let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
            sys.gpu
                .run(&mut sys.mem, "kcore-decrement", total, |tid, ctx| {
                    let w = ctx.load(&ef, tid) as usize;
                    let sup = ctx.load(&support, w);
                    if sup != REMOVED {
                        ctx.atomic_rmw(&mut support, w, |x| x.saturating_sub(1));
                    }
                    let _ = sup;
                });
        }
    }

    let report = sys.finish_trace();
    (core.into_vec(), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kcore::{gpu, reference};
    use crate::system::SystemKind;
    use scu_graph::Dataset;

    #[test]
    fn matches_reference_on_datasets() {
        for d in [Dataset::Ca, Dataset::Cond, Dataset::Kron] {
            let g = d.build(1.0 / 256.0, 3);
            let mut sys = System::with_scu(SystemKind::Tx1);
            let (core, _) = run(&mut sys, &g);
            assert_eq!(core, reference::coreness(&g), "dataset {d}");
        }
    }

    #[test]
    fn uses_the_bitmask_constructor() {
        let g = Dataset::Cond.build(1.0 / 128.0, 3);
        let mut sys = System::with_scu(SystemKind::Tx1);
        let (_, report) = run(&mut sys, &g);
        // Bitmask + compaction + expansion ops ran every round.
        assert!(report.scu.ops as u32 >= 2 * report.iterations);
        assert_eq!(report.gpu_compaction.launches, 0);
    }

    #[test]
    fn agrees_with_gpu_baseline() {
        let g = Dataset::Kron.build(1.0 / 256.0, 7);
        let mut a = System::baseline(SystemKind::Tx1);
        let (base, _) = gpu::run(&mut a, &g);
        let mut b = System::with_scu(SystemKind::Tx1);
        let (scu, _) = run(&mut b, &g);
        assert_eq!(base, scu);
    }
}

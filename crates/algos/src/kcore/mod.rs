//! k-core decomposition by iterative peeling — a second extension
//! beyond the paper's primitives, and the natural showcase for the
//! SCU's *Bitmask Constructor*: each peeling round is literally
//! "compare the support vector against k" followed by a compaction of
//! the nodes that fall out.
//!
//! Support is in-degree based: `support[v]` starts as the number of
//! edges pointing at `v`; peeling for level `k` repeatedly removes
//! nodes with `support < k` (their out-edges decrement their targets'
//! support) until stable, then `k` increases. A node removed while
//! peeling level `k` has coreness `k - 1`. Removed nodes' support is
//! parked at `u32::MAX`, so one comparison drives both the alive check
//! and the threshold — exactly the reference-value compare the
//! hardware unit implements.

pub mod gpu;
pub mod reference;
pub mod scu;

/// Support marker for removed nodes (compares above every real k).
pub const REMOVED: u32 = u32::MAX;

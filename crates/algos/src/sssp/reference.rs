//! Exact host Dijkstra.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use scu_graph::Csr;

use super::UNREACHED;

/// Shortest-path costs from `src` to every node ([`UNREACHED`] where
/// no path exists).
///
/// # Panics
///
/// Panics if `src` is out of range.
pub fn distances(g: &Csr, src: u32) -> Vec<u32> {
    assert!((src as usize) < g.num_nodes(), "source {src} out of range");
    let mut dist = vec![UNREACHED; g.num_nodes()];
    dist[src as usize] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u32, src)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for (&w, &c) in g.neighbors(v).iter().zip(g.neighbor_weights(v)) {
            let nd = d.saturating_add(c);
            if nd < dist[w as usize] {
                dist[w as usize] = nd;
                heap.push(Reverse((nd, w)));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use scu_graph::GraphBuilder;

    #[test]
    fn figure2_distances() {
        // Paper Figure 2c prints "0 2 3 1 3 3 3", but with the weights
        // of Figure 2b the path A->D->C costs 1 + 1 = 2 < 3; the
        // figure's value for C is inconsistent with its own CSR. We
        // assert the mathematically correct answer.
        let g = scu_graph::Csr::new(
            vec![0, 3, 5, 6, 8, 8, 8, 8],
            vec![1, 2, 3, 4, 5, 5, 2, 6],
            vec![2, 3, 1, 1, 1, 2, 1, 2],
        )
        .unwrap();
        assert_eq!(distances(&g, 0), vec![0, 2, 2, 1, 3, 3, 3]);
    }

    #[test]
    fn picks_cheaper_indirect_path() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 2, 10).add_edge(0, 1, 1).add_edge(1, 2, 2);
        let g = b.build();
        assert_eq!(distances(&g, 0), vec![0, 1, 3]);
    }

    #[test]
    fn unreachable_nodes() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        let g = b.build();
        assert_eq!(distances(&g, 0), vec![0, 1, UNREACHED]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_source_panics() {
        let g = GraphBuilder::new(1).build();
        distances(&g, 1);
    }
}

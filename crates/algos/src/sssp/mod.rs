//! Single-Source Shortest Paths (paper §2.2, §3.4, §4.5).
//!
//! * [`mod@reference`] — Dijkstra, the exact answer.
//! * [`gpu`] — the baseline GPU implementation after Davidson et al.:
//!   near-far worklists with a dynamically raised threshold, a lookup
//!   table for frontier deduplication, `atomicMin` cost updates, and
//!   scan/scatter compaction kernels.
//! * [`scu`] — Algorithm 2 (basic SCU offload) and Algorithm 5
//!   (enhanced: unique-best-cost filtering and destination-line
//!   grouping).

pub mod gpu;
pub mod reference;
pub mod scu;

/// Distance marker for unreached nodes.
pub const UNREACHED: u32 = u32::MAX;

/// Threshold increment between far-pile drains (the paper adjusts it
/// dynamically; a fixed step near the maximum edge weight behaves the
/// same for the 1..=10 weights our generators produce).
pub const DELTA: u32 = 10;

/// Which enhanced-SCU features an SSSP run enables (§4.5). Figure 12
/// measures grouping against a filtering-only baseline, so the two
/// knobs are independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScuVariant {
    /// Unique-best-cost filtering (expansion + far append).
    pub filtering: bool,
    /// Destination-line grouping (near contraction + far drain).
    pub grouping: bool,
}

impl ScuVariant {
    /// The basic SCU of Algorithm 2: compaction offload only.
    pub fn basic() -> Self {
        ScuVariant {
            filtering: false,
            grouping: false,
        }
    }

    /// Filtering without grouping (Figure 12's baseline).
    pub fn filtering_only() -> Self {
        ScuVariant {
            filtering: true,
            grouping: false,
        }
    }

    /// The full enhanced SCU of Algorithm 5.
    pub fn enhanced() -> Self {
        ScuVariant {
            filtering: true,
            grouping: true,
        }
    }
}

//! Baseline GPU SSSP (Davidson et al.'s near-far method, §2.2).
//!
//! Each iteration expands the node frontier into edge and weight
//! frontiers, then contracts: candidate costs below the threshold
//! ("near") update `dist` via `atomicMin` and — deduplicated through
//! the lookup table — form the next node frontier; costs above it are
//! appended to the far pile. When the frontier empties, the threshold
//! is raised and the far pile is drained (revalidated, deduplicated,
//! recompacted). All scan/gather/scatter work is tagged as stream
//! compaction (Figure 1).

use scu_gpu::buffer::DeviceArray;
use scu_graph::Csr;
use scu_trace::{IterGuard, PhaseGuard};

use crate::device_graph::DeviceGraph;
use crate::kernels::{edge_slot_map_into, gpu_exclusive_scan_into, ScanScratch};
use crate::report::{Phase, RunReport};
use crate::system::System;

use super::{DELTA, UNREACHED};

/// Runs baseline GPU SSSP from `src`; returns exact costs and the
/// measured report.
///
/// # Panics
///
/// Panics if `src` is out of range, or internal worklists overflow
/// (pathological input).
pub fn run(sys: &mut System, g: &Csr, src: u32) -> (Vec<u32>, RunReport) {
    assert!((src as usize) < g.num_nodes(), "source {src} out of range");
    sys.begin_trace("sssp", false);
    let dg = DeviceGraph::upload(&mut sys.alloc, g);
    let n = g.num_nodes();
    let m = g.num_edges().max(1);

    let ef_cap = 4 * m + 64;
    let far_cap = 8 * m + 64;
    let mut dist: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, n);
    let mut nf: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, ef_cap);
    let mut indexes: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, ef_cap);
    let mut counts: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, ef_cap);
    let mut base: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, ef_cap);
    let mut ef: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, ef_cap);
    let mut ew: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, ef_cap);
    let mut basef: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, ef_cap);
    let mut costf: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, ef_cap);
    let mut near_flags: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, ef_cap.max(far_cap));
    let mut far_flags: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, ef_cap.max(far_cap));
    let mut far_e: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, far_cap);
    let mut far_w: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, far_cap);
    let mut far_e2: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, far_cap);
    let mut far_w2: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, far_cap);
    let mut lut: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, n);

    {
        let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
        sys.gpu.run(&mut sys.mem, "sssp-init", n, |tid, ctx| {
            ctx.store(&mut dist, tid, UNREACHED);
        });
        sys.gpu.run(&mut sys.mem, "sssp-seed", 1, |_, ctx| {
            ctx.store(&mut dist, src as usize, 0);
            ctx.store(&mut nf, 0, src);
        });
    }

    let mut frontier_len = 1usize;
    let mut far_len = 0usize;
    let mut threshold = DELTA;
    let mut rounds = 0u64;
    let mut iter = 0u32;

    // Host staging reused across iterations so the loop body performs
    // no host allocation.
    let mut scan = ScanScratch::default();
    let mut rows: Vec<u32> = Vec::new();
    let mut pos: Vec<u32> = Vec::new();

    loop {
        rounds += 1;
        assert!(rounds < 64 * n as u64 + 1024, "SSSP failed to terminate");

        if frontier_len == 0 {
            if far_len == 0 {
                break;
            }
            // ---- Far-pile drain. ----
            threshold += DELTA;
            iter += 1;
            let _iter = IterGuard::new(sys.probe(), iter);

            // Revalidate & mark (processing); near candidates write
            // the lookup table and apply atomicMin.
            {
                let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
                sys.gpu
                    .run(&mut sys.mem, "sssp-drain-mark", far_len, |tid, ctx| {
                        let e = ctx.load(&far_e, tid) as usize;
                        let w = ctx.load(&far_w, tid);
                        let d = ctx.load(&dist, e);
                        ctx.alu(3);
                        let valid = w < d;
                        let near = valid && w <= threshold;
                        let keep_far = valid && w > threshold;
                        if near {
                            ctx.store(&mut lut, e, tid as u32);
                            ctx.atomic_min_u32(&mut dist, e, w);
                        }
                        ctx.store(&mut near_flags, tid, near as u32);
                        ctx.store(&mut far_flags, tid, keep_far as u32);
                    });

                // Owner resolution (processing).
                sys.gpu
                    .run(&mut sys.mem, "sssp-drain-owner", far_len, |tid, ctx| {
                        if ctx.load(&near_flags, tid) != 0 {
                            let e = ctx.load(&far_e, tid) as usize;
                            let owner = ctx.load(&lut, e) == tid as u32;
                            ctx.store(&mut near_flags, tid, owner as u32);
                        }
                    });
            }

            // Compact near -> node frontier (compaction).
            let (noff, nkept) = gpu_exclusive_scan_into(sys, &near_flags, far_len, &mut scan);
            {
                let _p = PhaseGuard::new(sys.probe(), Phase::Compaction);
                sys.gpu.run(
                    &mut sys.mem,
                    "sssp-drain-scatter-near",
                    far_len,
                    |tid, ctx| {
                        if ctx.load(&near_flags, tid) != 0 {
                            let e = ctx.load(&far_e, tid);
                            let off = ctx.load(&noff, tid) as usize;
                            ctx.store(&mut nf, off, e);
                        }
                    },
                );
            }

            // Recompact surviving far entries (compaction).
            let (foff, fkept) = gpu_exclusive_scan_into(sys, &far_flags, far_len, &mut scan);
            {
                let _p = PhaseGuard::new(sys.probe(), Phase::Compaction);
                sys.gpu.run(
                    &mut sys.mem,
                    "sssp-drain-scatter-far",
                    far_len,
                    |tid, ctx| {
                        if ctx.load(&far_flags, tid) != 0 {
                            let e = ctx.load(&far_e, tid);
                            let w = ctx.load(&far_w, tid);
                            let off = ctx.load(&foff, tid) as usize;
                            ctx.store(&mut far_e2, off, e);
                            ctx.store(&mut far_w2, off, w);
                        }
                    },
                );
            }

            std::mem::swap(&mut far_e, &mut far_e2);
            std::mem::swap(&mut far_w, &mut far_w2);
            frontier_len = nkept as usize;
            far_len = fkept as usize;
            continue;
        }

        iter += 1;
        let _iter = IterGuard::new(sys.probe(), iter);

        // ---- Expansion setup (processing). ----
        {
            let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
            sys.gpu.run(
                &mut sys.mem,
                "sssp-expand-setup",
                frontier_len,
                |tid, ctx| {
                    let v = ctx.load(&nf, tid) as usize;
                    let lo = ctx.load(&dg.row_offsets, v);
                    let hi = ctx.load(&dg.row_offsets, v + 1);
                    let d = ctx.load(&dist, v);
                    ctx.alu(1);
                    ctx.store(&mut indexes, tid, lo);
                    ctx.store(&mut counts, tid, hi - lo);
                    ctx.store(&mut base, tid, d);
                },
            );
        }

        // ---- Expansion scan + gather (compaction). ----
        let (offsets, total) = gpu_exclusive_scan_into(sys, &counts, frontier_len, &mut scan);
        let total = total as usize;
        assert!(
            total <= ef_cap,
            "edge frontier overflow: {total} > {ef_cap}"
        );
        // Load-balanced gather: one thread per edge-frontier slot.
        edge_slot_map_into(&indexes, &counts, frontier_len, &mut rows, &mut pos);
        {
            let _p = PhaseGuard::new(sys.probe(), Phase::Compaction);
            sys.gpu
                .run(&mut sys.mem, "sssp-expand-gather", total, |e, ctx| {
                    ctx.alu(3); // merge-path binary search (amortised)
                    let row = rows[e] as usize;
                    ctx.load(&offsets, row);
                    let b = ctx.load(&base, row);
                    let p = pos[e] as usize;
                    let v = ctx.load(&dg.edges, p);
                    let w = ctx.load(&dg.weights, p);
                    ctx.store(&mut ef, e, v);
                    ctx.store(&mut ew, e, w);
                    ctx.store(&mut basef, e, b);
                });
        }

        if total == 0 {
            frontier_len = 0;
            continue;
        }

        // ---- Contraction: resolve (processing). Near candidates
        // write their thread ID to the lookup table and apply
        // atomicMin; a second pass picks one owner per node for the
        // frontier (Davidson's dedup scheme, §2.2.2). ----
        {
            let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
            sys.gpu
                .run(&mut sys.mem, "sssp-contract-resolve", total, |tid, ctx| {
                    let e = ctx.load(&ef, tid) as usize;
                    let w = ctx.load(&ew, tid);
                    let b = ctx.load(&basef, tid);
                    ctx.alu(2);
                    let cost = b.saturating_add(w);
                    let d = ctx.load(&dist, e);
                    let valid = cost < d;
                    let near = valid && cost <= threshold;
                    let far = valid && cost > threshold;
                    if near {
                        ctx.store(&mut lut, e, tid as u32);
                        ctx.atomic_min_u32(&mut dist, e, cost);
                    }
                    ctx.store(&mut near_flags, tid, near as u32);
                    ctx.store(&mut far_flags, tid, far as u32);
                    ctx.store(&mut costf, tid, cost);
                });

            // ---- Contraction: owner resolution (processing). ----
            sys.gpu
                .run(&mut sys.mem, "sssp-contract-owner", total, |tid, ctx| {
                    if ctx.load(&near_flags, tid) != 0 {
                        let e = ctx.load(&ef, tid) as usize;
                        let owner = ctx.load(&lut, e) == tid as u32;
                        ctx.store(&mut near_flags, tid, owner as u32);
                    }
                });
        }

        // ---- Contraction: compact near -> node frontier. ----
        let (noff, nkept) = gpu_exclusive_scan_into(sys, &near_flags, total, &mut scan);
        {
            let _p = PhaseGuard::new(sys.probe(), Phase::Compaction);
            sys.gpu.run(
                &mut sys.mem,
                "sssp-contract-scatter-near",
                total,
                |tid, ctx| {
                    if ctx.load(&near_flags, tid) != 0 {
                        let e = ctx.load(&ef, tid);
                        let off = ctx.load(&noff, tid) as usize;
                        ctx.store(&mut nf, off, e);
                    }
                },
            );
        }

        // ---- Contraction: append far entries. ----
        let (foff, fkept) = gpu_exclusive_scan_into(sys, &far_flags, total, &mut scan);
        assert!(far_len + fkept as usize <= far_cap, "far pile overflow");
        {
            let _p = PhaseGuard::new(sys.probe(), Phase::Compaction);
            sys.gpu.run(
                &mut sys.mem,
                "sssp-contract-scatter-far",
                total,
                |tid, ctx| {
                    if ctx.load(&far_flags, tid) != 0 {
                        let e = ctx.load(&ef, tid);
                        let c = ctx.load(&costf, tid);
                        let off = far_len + ctx.load(&foff, tid) as usize;
                        ctx.store(&mut far_e, off, e);
                        ctx.store(&mut far_w, off, c);
                    }
                },
            );
        }

        frontier_len = nkept as usize;
        far_len += fkept as usize;
    }

    let report = sys.finish_trace();
    (dist.into_vec(), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sssp::reference;
    use crate::system::SystemKind;
    use scu_graph::Dataset;

    #[test]
    fn matches_dijkstra_on_figure2() {
        let g = scu_graph::Csr::new(
            vec![0, 3, 5, 6, 8, 8, 8, 8],
            vec![1, 2, 3, 4, 5, 5, 2, 6],
            vec![2, 3, 1, 1, 1, 2, 1, 2],
        )
        .unwrap();
        let mut sys = System::baseline(SystemKind::Tx1);
        let (dist, _) = run(&mut sys, &g, 0);
        assert_eq!(dist, reference::distances(&g, 0));
    }

    #[test]
    fn matches_dijkstra_on_datasets() {
        for d in [Dataset::Cond, Dataset::Kron, Dataset::Ca] {
            let g = d.build(1.0 / 256.0, 3);
            let mut sys = System::baseline(SystemKind::Tx1);
            let (dist, _) = run(&mut sys, &g, 0);
            assert_eq!(dist, reference::distances(&g, 0), "dataset {d}");
        }
    }

    #[test]
    fn uses_far_pile() {
        // Weights up to 10 with DELTA=10 guarantee some multi-drain
        // behaviour on a long weighted path.
        let g = Dataset::Ca.build(1.0 / 256.0, 4);
        let mut sys = System::baseline(SystemKind::Tx1);
        let (_, report) = run(&mut sys, &g, 0);
        assert!(report.iterations > 3);
    }

    #[test]
    fn report_is_populated() {
        let g = Dataset::Cond.build(1.0 / 256.0, 3);
        let mut sys = System::baseline(SystemKind::Tx1);
        let (_, report) = run(&mut sys, &g, 0);
        assert!(report.total_time_ns() > 0.0);
        assert!(report.gpu_compaction.time_ns > 0.0);
        assert!(report.gpu_processing.atomics > 0);
    }
}

//! SSSP with compaction offloaded to the SCU (Algorithms 2 and 5).
//!
//! Basic SCU (Algorithm 2): the edge, weight and replicated-base
//! frontiers come from *Access Expansion Compaction* and *Replication
//! Compaction*; near/far compaction and the far-pile maintenance use
//! *Data Compaction* with GPU-computed bitmasks.
//!
//! Enhanced SCU (Algorithm 5): a unique-best-cost filter pass over the
//! expansion stream (the filter unit's adder forms `base + weight`)
//! drops stale and duplicated relaxations before they reach the GPU;
//! the near contraction adds destination-line *grouping* (the GPU
//! filtering there is already complete, §4.5.2); the far drain gets
//! both filtering and grouping.

use scu_core::group::GroupHash;
use scu_core::hash::{FilterHash, FilterMode};
use scu_gpu::buffer::DeviceArray;
use scu_graph::Csr;
use scu_trace::{IterGuard, PhaseGuard};

use crate::device_graph::DeviceGraph;
use crate::report::{Phase, RunReport};
use crate::system::System;

use super::{ScuVariant, DELTA, UNREACHED};

/// Runs SCU-offloaded SSSP from `src` with the given enhanced-feature
/// [`ScuVariant`]. Returns exact costs and the measured report.
///
/// # Panics
///
/// Panics if `src` is out of range or `sys` has no SCU.
pub fn run(sys: &mut System, g: &Csr, src: u32, variant: ScuVariant) -> (Vec<u32>, RunReport) {
    assert!((src as usize) < g.num_nodes(), "source {src} out of range");
    assert!(
        sys.scu.is_some(),
        "SCU SSSP requires a System::with_scu platform"
    );
    sys.begin_trace("sssp", true);
    let dg = DeviceGraph::upload(&mut sys.alloc, g);
    let n = g.num_nodes();
    let m = g.num_edges().max(1);

    let ef_cap = 4 * m + 64;
    let far_cap = 8 * m + 64;
    let mut dist: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, n);
    let mut nf: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, ef_cap);
    let mut indexes: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, ef_cap);
    let mut counts: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, ef_cap);
    let mut base: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, ef_cap);
    let mut ef: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, ef_cap);
    let mut ew: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, ef_cap);
    let mut basef: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, ef_cap);
    let mut costf: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, ef_cap);
    let mut near8: DeviceArray<u8> = DeviceArray::zeroed(&mut sys.alloc, ef_cap.max(far_cap));
    let mut far8: DeviceArray<u8> = DeviceArray::zeroed(&mut sys.alloc, ef_cap.max(far_cap));
    let mut elem_flags: DeviceArray<u8> = DeviceArray::zeroed(&mut sys.alloc, ef_cap);
    let mut filt8: DeviceArray<u8> = DeviceArray::zeroed(&mut sys.alloc, far_cap);
    let mut order: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, ef_cap.max(far_cap));
    let mut far_e: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, far_cap);
    let mut far_w: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, far_cap);
    let mut far_e2: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, far_cap);
    let mut far_w2: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, far_cap);
    let mut lut: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, n);

    let scu_cfg = sys.scu.as_ref().expect("checked above").config().clone();
    let mut cost_hash = FilterHash::new(&mut sys.alloc, scu_cfg.filter_sssp_hash);
    let mut far_hash = FilterHash::new(&mut sys.alloc, scu_cfg.filter_sssp_hash);
    let mut group_hash = GroupHash::new(&mut sys.alloc, scu_cfg.grouping_hash);

    {
        let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
        sys.gpu.run(&mut sys.mem, "sssp-init", n, |tid, ctx| {
            ctx.store(&mut dist, tid, UNREACHED);
        });
        sys.gpu.run(&mut sys.mem, "sssp-seed", 1, |_, ctx| {
            ctx.store(&mut dist, src as usize, 0);
            ctx.store(&mut nf, 0, src);
        });
    }

    let mut frontier_len = 1usize;
    let mut far_len = 0usize;
    let mut threshold = DELTA;
    let mut rounds = 0u64;
    let mut iter = 0u32;

    loop {
        rounds += 1;
        assert!(rounds < 64 * n as u64 + 1024, "SSSP failed to terminate");

        if frontier_len == 0 {
            if far_len == 0 {
                break;
            }
            // ---- Far-pile drain. ----
            threshold += DELTA;
            iter += 1;
            let _iter = IterGuard::new(sys.probe(), iter);

            {
                let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
                sys.gpu
                    .run(&mut sys.mem, "sssp-drain-mark", far_len, |tid, ctx| {
                        let e = ctx.load(&far_e, tid) as usize;
                        let w = ctx.load(&far_w, tid);
                        let d = ctx.load(&dist, e);
                        ctx.alu(3);
                        let valid = w < d;
                        let near = valid && w <= threshold;
                        let keep_far = valid && w > threshold;
                        if near {
                            ctx.store(&mut lut, e, tid as u32);
                            ctx.atomic_min_u32(&mut dist, e, w);
                        }
                        ctx.store(&mut near8, tid, near as u8);
                        ctx.store(&mut far8, tid, keep_far as u8);
                    });

                sys.gpu
                    .run(&mut sys.mem, "sssp-drain-owner", far_len, |tid, ctx| {
                        if ctx.load(&near8, tid) != 0 {
                            let e = ctx.load(&far_e, tid) as usize;
                            let owner = ctx.load(&lut, e) == tid as u32;
                            ctx.store(&mut near8, tid, owner as u8);
                        }
                    });
            }

            let _p = PhaseGuard::new(sys.probe(), Phase::Compaction);
            let scu = sys.scu.as_mut().expect("checked above");
            let nkept = if variant.grouping {
                // Far elements were filtered at append time; at drain
                // only grouping applies (§4.5.2's second contraction;
                // see DESIGN.md for why the filter runs at append).
                scu.group_pass_data(
                    &mut sys.mem,
                    &far_e,
                    far_len,
                    Some(&near8),
                    &dist,
                    &mut group_hash,
                    &mut order,
                );
                scu.data_compaction_n(
                    &mut sys.mem,
                    &far_e,
                    far_len,
                    Some(&near8),
                    Some(&order),
                    &mut nf,
                    0,
                )
                .elements_out
            } else {
                scu.data_compaction_n(
                    &mut sys.mem,
                    &far_e,
                    far_len,
                    Some(&near8),
                    None,
                    &mut nf,
                    0,
                )
                .elements_out
            };
            let fkept = scu
                .data_compaction_n(
                    &mut sys.mem,
                    &far_e,
                    far_len,
                    Some(&far8),
                    None,
                    &mut far_e2,
                    0,
                )
                .elements_out;
            scu.data_compaction_n(
                &mut sys.mem,
                &far_w,
                far_len,
                Some(&far8),
                None,
                &mut far_w2,
                0,
            );

            std::mem::swap(&mut far_e, &mut far_e2);
            std::mem::swap(&mut far_w, &mut far_w2);
            frontier_len = nkept as usize;
            far_len = fkept as usize;
            continue;
        }

        iter += 1;
        let _iter = IterGuard::new(sys.probe(), iter);

        // ---- Expansion setup (processing). ----
        {
            let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
            sys.gpu.run(
                &mut sys.mem,
                "sssp-expand-setup",
                frontier_len,
                |tid, ctx| {
                    let v = ctx.load(&nf, tid) as usize;
                    let lo = ctx.load(&dg.row_offsets, v);
                    let hi = ctx.load(&dg.row_offsets, v + 1);
                    let d = ctx.load(&dist, v);
                    ctx.alu(1);
                    ctx.store(&mut indexes, tid, lo);
                    ctx.store(&mut counts, tid, hi - lo);
                    ctx.store(&mut base, tid, d);
                },
            );
        }

        // ---- Expansion on the SCU. ----
        let expansion_size: usize = (0..frontier_len).map(|i| counts.get(i) as usize).sum();
        assert!(expansion_size <= ef_cap, "edge frontier overflow");
        let total = {
            let _p = PhaseGuard::new(sys.probe(), Phase::Compaction);
            let scu = sys.scu.as_mut().expect("checked above");
            let eflags = if variant.filtering {
                scu.filter_pass_expansion(
                    &mut sys.mem,
                    &dg.edges,
                    Some(&dg.weights),
                    &indexes,
                    &counts,
                    frontier_len,
                    Some(&base),
                    FilterMode::UniqueBestCost,
                    &mut cost_hash,
                    &mut elem_flags,
                );
                Some(&elem_flags)
            } else {
                None
            };
            let total = scu
                .access_expansion_compaction(
                    &mut sys.mem,
                    &dg.edges,
                    &indexes,
                    &counts,
                    frontier_len,
                    eflags,
                    None,
                    &mut ef,
                )
                .elements_out as usize;
            scu.access_expansion_compaction(
                &mut sys.mem,
                &dg.weights,
                &indexes,
                &counts,
                frontier_len,
                eflags,
                None,
                &mut ew,
            );
            scu.replication_compaction(
                &mut sys.mem,
                &base,
                &counts,
                frontier_len,
                None,
                eflags,
                &mut basef,
            );
            total
        };

        if total == 0 {
            frontier_len = 0;
            continue;
        }

        // ---- Contraction marking on the GPU. Near candidates write
        // the lookup table and apply atomicMin; a second pass picks
        // one owner per node (Davidson's dedup scheme, §2.2.2). ----
        {
            let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
            sys.gpu
                .run(&mut sys.mem, "sssp-contract-resolve", total, |tid, ctx| {
                    let e = ctx.load(&ef, tid) as usize;
                    let w = ctx.load(&ew, tid);
                    let b = ctx.load(&basef, tid);
                    ctx.alu(2);
                    let cost = b.saturating_add(w);
                    let d = ctx.load(&dist, e);
                    let valid = cost < d;
                    let near = valid && cost <= threshold;
                    let far = valid && cost > threshold;
                    if near {
                        ctx.store(&mut lut, e, tid as u32);
                        ctx.atomic_min_u32(&mut dist, e, cost);
                    }
                    ctx.store(&mut near8, tid, near as u8);
                    ctx.store(&mut far8, tid, far as u8);
                    ctx.store(&mut costf, tid, cost);
                });

            sys.gpu
                .run(&mut sys.mem, "sssp-contract-owner", total, |tid, ctx| {
                    if ctx.load(&near8, tid) != 0 {
                        let e = ctx.load(&ef, tid) as usize;
                        let owner = ctx.load(&lut, e) == tid as u32;
                        ctx.store(&mut near8, tid, owner as u8);
                    }
                });
        }

        // ---- Contraction compaction on the SCU. ----
        let _p = PhaseGuard::new(sys.probe(), Phase::Compaction);
        let scu = sys.scu.as_mut().expect("checked above");
        let nkept = if variant.grouping {
            // Near: GPU filtering is complete; only grouping applies.
            scu.group_pass_data(
                &mut sys.mem,
                &ef,
                total,
                Some(&near8),
                &dist,
                &mut group_hash,
                &mut order,
            );
            scu.data_compaction_n(
                &mut sys.mem,
                &ef,
                total,
                Some(&near8),
                Some(&order),
                &mut nf,
                0,
            )
            .elements_out
        } else {
            scu.data_compaction_n(&mut sys.mem, &ef, total, Some(&near8), None, &mut nf, 0)
                .elements_out
        };
        let far_append_flags = if variant.filtering {
            // Unique-best-cost filtering of the far pile at append
            // time: duplicates and never-useful relaxations never
            // enter the pile.
            scu.filter_pass_data(
                &mut sys.mem,
                &ef,
                total,
                Some(&far8),
                FilterMode::UniqueBestCost,
                Some(&costf),
                &mut far_hash,
                &mut filt8,
            );
            &filt8
        } else {
            &far8
        };
        let fkept = scu
            .data_compaction_n(
                &mut sys.mem,
                &ef,
                total,
                Some(far_append_flags),
                None,
                &mut far_e,
                far_len,
            )
            .elements_out;
        scu.data_compaction_n(
            &mut sys.mem,
            &costf,
            total,
            Some(far_append_flags),
            None,
            &mut far_w,
            far_len,
        );
        assert!(far_len + fkept as usize <= far_cap, "far pile overflow");

        frontier_len = nkept as usize;
        far_len += fkept as usize;
    }

    let report = sys.finish_trace();
    (dist.into_vec(), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sssp::{gpu, reference};
    use crate::system::SystemKind;
    use scu_graph::Dataset;

    #[test]
    fn basic_matches_dijkstra() {
        for d in [Dataset::Cond, Dataset::Kron] {
            let g = d.build(1.0 / 256.0, 3);
            let mut sys = System::with_scu(SystemKind::Tx1);
            let (dist, _) = run(&mut sys, &g, 0, ScuVariant::basic());
            assert_eq!(dist, reference::distances(&g, 0), "dataset {d}");
        }
    }

    #[test]
    fn enhanced_matches_dijkstra() {
        for d in [Dataset::Cond, Dataset::Kron, Dataset::Ca] {
            let g = d.build(1.0 / 256.0, 3);
            let mut sys = System::with_scu(SystemKind::Tx1);
            let (dist, _) = run(&mut sys, &g, 0, ScuVariant::enhanced());
            assert_eq!(dist, reference::distances(&g, 0), "dataset {d}");
        }
    }

    #[test]
    fn enhanced_reduces_gpu_workload() {
        let g = Dataset::Kron.build(1.0 / 64.0, 5);
        let mut base_sys = System::baseline(SystemKind::Tx1);
        let (_, base) = gpu::run(&mut base_sys, &g, 0);
        let mut scu_sys = System::with_scu(SystemKind::Tx1);
        let (_, enh) = run(&mut scu_sys, &g, 0, ScuVariant::enhanced());
        let ratio = enh.gpu_thread_insts() as f64 / base.gpu_thread_insts() as f64;
        assert!(ratio < 0.7, "GPU workload ratio {ratio}");
        assert!(enh.scu.filter.dropped > 0);
        assert!(enh.scu.group.elements > 0);
    }

    #[test]
    fn grouping_improves_gpu_coalescing() {
        // Figure 12's comparison: grouping against a filtering-only
        // SCU (filtering alone removes well-coalesced duplicates, so
        // the raw divergence of the surviving accesses rises; grouping
        // must claw coalescing back).
        let g = Dataset::Kron.build(1.0 / 64.0, 5);
        let mut fo_sys = System::with_scu(SystemKind::Tx1);
        let (_, fo) = run(&mut fo_sys, &g, 0, ScuVariant::filtering_only());
        let mut enh_sys = System::with_scu(SystemKind::Tx1);
        let (_, enh) = run(&mut enh_sys, &g, 0, ScuVariant::enhanced());
        assert!(
            enh.gpu_coalescing() < fo.gpu_coalescing(),
            "enhanced {} vs filtering-only {}",
            enh.gpu_coalescing(),
            fo.gpu_coalescing()
        );
    }

    #[test]
    fn filtering_only_matches_dijkstra() {
        let g = Dataset::Cond.build(1.0 / 256.0, 9);
        let mut sys = System::with_scu(SystemKind::Tx1);
        let (dist, _) = run(&mut sys, &g, 0, ScuVariant::filtering_only());
        assert_eq!(dist, reference::distances(&g, 0));
    }
}

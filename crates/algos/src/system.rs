//! The simulated platform: GPU engine + optional SCU + shared memory.
//!
//! The platform also owns the run's trace session: [`System::begin_trace`]
//! attaches one shared [`scu_trace::RecordingSink`] to every layer
//! (memory system, GPU engine, SCU), and [`System::finish_trace`]
//! detaches it and derives the [`RunReport`] from the finished
//! [`Timeline`] — the single event stream every report and exporter is
//! a fold over.

use std::cell::RefCell;
use std::rc::Rc;

use scu_core::{ScuConfig, ScuDevice};
use scu_energy::EnergyModel;
use scu_gpu::{GpuConfig, GpuEngine};
use scu_mem::buffer::DeviceAllocator;
use scu_mem::system::MemorySystem;
use scu_trace::{Probe, RecordingSink, Timeline};
use serde::{Deserialize, Serialize};

use crate::report::RunReport;

/// Which of the paper's two platforms to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// High-performance NVIDIA GTX 980 (Table 3).
    Gtx980,
    /// Low-power NVIDIA Tegra X1 (Table 4).
    Tx1,
}

impl SystemKind {
    /// Both platforms, in the paper's order.
    pub const ALL: [SystemKind; 2] = [SystemKind::Gtx980, SystemKind::Tx1];

    /// The paper's name for the platform.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::Gtx980 => "GTX980",
            SystemKind::Tx1 => "TX1",
        }
    }

    /// Parses the paper's name, case-insensitively.
    pub fn from_name(name: &str) -> Option<SystemKind> {
        SystemKind::ALL
            .into_iter()
            .find(|s| s.name().eq_ignore_ascii_case(name))
    }

    /// GPU configuration for this platform.
    pub fn gpu_config(self) -> GpuConfig {
        match self {
            SystemKind::Gtx980 => GpuConfig::gtx980(),
            SystemKind::Tx1 => GpuConfig::tx1(),
        }
    }

    /// SCU configuration for this platform (Table 2 scaling).
    pub fn scu_config(self) -> ScuConfig {
        match self {
            SystemKind::Gtx980 => ScuConfig::gtx980(),
            SystemKind::Tx1 => ScuConfig::tx1(),
        }
    }

    /// Energy model for this platform.
    pub fn energy_model(self, scu_present: bool) -> EnergyModel {
        match self {
            SystemKind::Gtx980 => EnergyModel::gtx980(scu_present),
            SystemKind::Tx1 => EnergyModel::tx1(scu_present),
        }
    }
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A complete simulated platform instance.
///
/// Owns the GPU engine, the shared L2+DRAM [`MemorySystem`] the SCU
/// and SMs both sit on (Figure 5), the device allocator, the energy
/// model, and — when configured with one — the SCU itself.
#[derive(Debug)]
pub struct System {
    /// Which platform this is.
    pub kind: SystemKind,
    /// The SM array model.
    pub gpu: GpuEngine,
    /// The SCU, present on `with_scu` systems.
    pub scu: Option<ScuDevice>,
    /// Shared L2 + DRAM.
    pub mem: MemorySystem,
    /// Bump allocator for device buffers.
    pub alloc: DeviceAllocator,
    /// Event-energy model matching `kind` and SCU presence.
    pub energy: EnergyModel,
    /// Live recording sink between `begin_trace` and `finish_trace`.
    recorder: Option<Rc<RefCell<RecordingSink>>>,
    /// Probe the devices share while tracing (off otherwise).
    probe: Probe,
    /// Finished timeline of the last traced run.
    last_timeline: Option<Timeline>,
}

impl System {
    /// A baseline platform: GPU only, no SCU.
    pub fn baseline(kind: SystemKind) -> Self {
        let gpu_cfg = kind.gpu_config();
        System {
            kind,
            mem: MemorySystem::new(gpu_cfg.memory.clone()),
            gpu: GpuEngine::new(gpu_cfg),
            scu: None,
            alloc: DeviceAllocator::new(),
            energy: kind.energy_model(false),
            recorder: None,
            probe: Probe::off(),
            last_timeline: None,
        }
    }

    /// A platform extended with the SCU.
    pub fn with_scu(kind: SystemKind) -> Self {
        let mut s = System::baseline(kind);
        s.scu = Some(ScuDevice::new(kind.scu_config()));
        s.energy = kind.energy_model(true);
        s
    }

    /// The SCU, panicking with a clear message when absent.
    ///
    /// # Panics
    ///
    /// Panics if this system was built with [`System::baseline`].
    pub fn scu_mut(&mut self) -> &mut ScuDevice {
        self.scu
            .as_mut()
            .expect("this System was built without an SCU")
    }

    /// Peak DRAM bandwidth of this platform, bytes/second.
    pub fn peak_bw_bytes_per_sec(&self) -> f64 {
        self.mem.config().dram.peak_bw_bytes_per_sec
    }

    /// Starts a trace session: one [`RecordingSink`] shared by the
    /// memory system, the GPU engine and (when present) the SCU.
    /// Every kernel, SCU op and memory window they retire from here on
    /// lands in one ordered event stream.
    pub fn begin_trace(&mut self, algo: &'static str, scu_present: bool) {
        let sink = Rc::new(RefCell::new(RecordingSink::new(algo, scu_present)));
        let probe = Probe::new(sink.clone());
        self.mem.set_probe(probe.clone());
        self.gpu.set_probe(probe.clone());
        if let Some(scu) = self.scu.as_mut() {
            scu.set_probe(probe.clone());
        }
        self.probe = probe;
        self.recorder = Some(sink);
        self.last_timeline = None;
    }

    /// A clone of the current probe, for scope guards
    /// ([`scu_trace::PhaseGuard`], [`scu_trace::IterGuard`]). Off when
    /// no trace session is active.
    pub fn probe(&self) -> Probe {
        self.probe.clone()
    }

    /// Ends the trace session, detaching every probe, and returns the
    /// finished timeline.
    ///
    /// # Panics
    ///
    /// Panics if no session is active, or if probe clones (e.g. a
    /// still-open guard) outlive the session.
    pub fn end_trace(&mut self) -> Timeline {
        self.mem.set_probe(Probe::off());
        self.gpu.set_probe(Probe::off());
        if let Some(scu) = self.scu.as_mut() {
            scu.set_probe(Probe::off());
        }
        self.probe = Probe::off();
        let sink = self
            .recorder
            .take()
            .expect("end_trace called without begin_trace");
        Rc::try_unwrap(sink)
            .expect("a probe clone outlived the trace session")
            .into_inner()
            .finish()
    }

    /// Ends the trace session and derives the run's [`RunReport`] from
    /// the timeline; the timeline itself stays available through
    /// [`System::take_timeline`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`System::end_trace`].
    pub fn finish_trace(&mut self) -> RunReport {
        let tl = self.end_trace();
        let report =
            RunReport::from_timeline(&tl, self.kind, &self.energy, self.peak_bw_bytes_per_sec());
        self.last_timeline = Some(tl);
        report
    }

    /// Takes the timeline recorded by the last [`System::finish_trace`].
    pub fn take_timeline(&mut self) -> Option<Timeline> {
        self.last_timeline.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_has_no_scu() {
        let s = System::baseline(SystemKind::Tx1);
        assert!(s.scu.is_none());
    }

    #[test]
    fn with_scu_matches_kind() {
        let s = System::with_scu(SystemKind::Gtx980);
        assert_eq!(s.scu.as_ref().unwrap().config().pipeline_width, 4);
        let s = System::with_scu(SystemKind::Tx1);
        assert_eq!(s.scu.as_ref().unwrap().config().pipeline_width, 1);
    }

    #[test]
    #[should_panic(expected = "without an SCU")]
    fn scu_mut_panics_on_baseline() {
        let mut s = System::baseline(SystemKind::Tx1);
        let _ = s.scu_mut();
    }

    #[test]
    fn names_and_display() {
        assert_eq!(SystemKind::Gtx980.to_string(), "GTX980");
        assert_eq!(SystemKind::Tx1.name(), "TX1");
    }

    #[test]
    fn peak_bandwidth_differs() {
        let g = System::baseline(SystemKind::Gtx980);
        let t = System::baseline(SystemKind::Tx1);
        assert!(g.peak_bw_bytes_per_sec() > t.peak_bw_bytes_per_sec());
    }
}

//! One-call entry points used by the benches and examples.

use scu_core::{ScuConfig, ScuDevice};
use scu_graph::Csr;
use scu_trace::Timeline;
use serde::{Deserialize, Serialize};

use crate::report::RunReport;
use crate::system::{System, SystemKind};
use crate::{bfs, cc, kcore, pagerank, sssp};

/// Which graph primitive to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Breadth-First Search from node 0.
    Bfs,
    /// Single-Source Shortest Paths from node 0.
    Sssp,
    /// PageRank (up to [`pagerank::MAX_ITERS`] iterations).
    PageRank,
    /// Connected components by min-label propagation — an extension
    /// beyond the paper's three primitives (not part of
    /// [`Algorithm::ALL`], which mirrors the paper's evaluation).
    Cc,
    /// k-core decomposition by iterative peeling — an extension
    /// exercising the Bitmask Constructor operation (not part of
    /// [`Algorithm::ALL`]).
    KCore,
}

impl Algorithm {
    /// All three primitives in the paper's order.
    pub const ALL: [Algorithm; 3] = [Algorithm::Bfs, Algorithm::Sssp, Algorithm::PageRank];

    /// The paper's three primitives plus this reproduction's two
    /// extensions, in presentation order. The experiment matrix and
    /// JSON export sweep this set; the paper-figure renderers stick
    /// to [`Algorithm::ALL`].
    pub const EXTENDED: [Algorithm; 5] = [
        Algorithm::Bfs,
        Algorithm::Sssp,
        Algorithm::PageRank,
        Algorithm::Cc,
        Algorithm::KCore,
    ];

    /// The paper's short name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Bfs => "BFS",
            Algorithm::Sssp => "SSSP",
            Algorithm::PageRank => "PR",
            Algorithm::Cc => "CC",
            Algorithm::KCore => "KCORE",
        }
    }

    /// Parses the paper's short name, case-insensitively — the shared
    /// validator for CLI positionals and server request specs.
    pub fn from_name(name: &str) -> Option<Algorithm> {
        Algorithm::EXTENDED
            .into_iter()
            .find(|a| a.name().eq_ignore_ascii_case(name))
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which machine variant executes the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// GPU only — the paper's baseline.
    GpuBaseline,
    /// GPU + basic SCU (Algorithms 1–3).
    ScuBasic,
    /// GPU + SCU with filtering only (Figure 12's baseline; equals
    /// `ScuBasic` for PR, which uses no enhanced features).
    ScuFilteringOnly,
    /// GPU + enhanced SCU (Algorithms 4–5; equals `ScuBasic` for PR).
    ScuEnhanced,
}

impl Mode {
    /// Whether this mode needs an SCU in the system.
    pub fn uses_scu(self) -> bool {
        self != Mode::GpuBaseline
    }

    /// Short label for reports.
    pub fn name(self) -> &'static str {
        match self {
            Mode::GpuBaseline => "gpu",
            Mode::ScuBasic => "scu-basic",
            Mode::ScuFilteringOnly => "scu-filtering",
            Mode::ScuEnhanced => "scu-enhanced",
        }
    }

    /// Parses the short label, case-insensitively.
    pub fn from_name(name: &str) -> Option<Mode> {
        crate::experiment::ALL_MODES
            .into_iter()
            .find(|m| m.name().eq_ignore_ascii_case(name))
    }
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The result of one run: the algorithm's answer (as `u64` hop/cost
/// values or scaled ranks, uniformly comparable across modes) plus the
/// measurement report.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Algorithm results normalised for cross-mode comparison: BFS and
    /// SSSP distances verbatim; PR ranks quantised to 1e-9.
    pub values: Vec<u64>,
    /// The measurement report (derived from [`RunOutput::timeline`]).
    pub report: RunReport,
    /// The full event timeline the run recorded; every derived view
    /// (report, phase breakdown, chrome trace) folds over this.
    pub timeline: Timeline,
}

/// Runs `algorithm` over `g` on a fresh system of `kind` in `mode`.
///
/// BFS and SSSP start from node 0; PageRank runs up to
/// [`pagerank::MAX_ITERS`] iterations. The returned
/// [`RunOutput::values`] are identical across modes for the same
/// algorithm and graph — the machines differ, the answers must not.
pub fn run(algorithm: Algorithm, g: &Csr, kind: SystemKind, mode: Mode) -> RunOutput {
    run_with(algorithm, g, kind, mode, pagerank::MAX_ITERS)
}

/// [`run`] with an explicit PageRank iteration cap (ignored by BFS
/// and SSSP). Experiments use a smaller cap to bound simulation time;
/// normalised metrics are insensitive to it.
pub fn run_with(
    algorithm: Algorithm,
    g: &Csr,
    kind: SystemKind,
    mode: Mode,
    pr_iters: u32,
) -> RunOutput {
    run_configured(algorithm, g, kind, mode, pr_iters, None)
}

/// [`run_with`] with an optional custom [`ScuConfig`] (hash-size or
/// pipeline-width overrides for ablations and scaled experiments).
pub fn run_configured(
    algorithm: Algorithm,
    g: &Csr,
    kind: SystemKind,
    mode: Mode,
    pr_iters: u32,
    scu_config: Option<&ScuConfig>,
) -> RunOutput {
    let mut sys = if mode.uses_scu() {
        let mut s = System::with_scu(kind);
        if let Some(cfg) = scu_config {
            s.scu = Some(ScuDevice::new(cfg.clone()));
        }
        s
    } else {
        System::baseline(kind)
    };
    let (values, report) = match (algorithm, mode) {
        (Algorithm::Bfs, Mode::GpuBaseline) => {
            let (d, r) = bfs::gpu::run(&mut sys, g, 0);
            (widen(&d), r)
        }
        (Algorithm::Bfs, Mode::ScuBasic) => {
            let (d, r) = bfs::scu::run(&mut sys, g, 0, false);
            (widen(&d), r)
        }
        (Algorithm::Bfs, Mode::ScuFilteringOnly) | (Algorithm::Bfs, Mode::ScuEnhanced) => {
            let (d, r) = bfs::scu::run(&mut sys, g, 0, true);
            (widen(&d), r)
        }
        (Algorithm::Sssp, Mode::GpuBaseline) => {
            let (d, r) = sssp::gpu::run(&mut sys, g, 0);
            (widen(&d), r)
        }
        (Algorithm::Sssp, Mode::ScuBasic) => {
            let (d, r) = sssp::scu::run(&mut sys, g, 0, sssp::ScuVariant::basic());
            (widen(&d), r)
        }
        (Algorithm::Sssp, Mode::ScuFilteringOnly) => {
            let (d, r) = sssp::scu::run(&mut sys, g, 0, sssp::ScuVariant::filtering_only());
            (widen(&d), r)
        }
        (Algorithm::Sssp, Mode::ScuEnhanced) => {
            let (d, r) = sssp::scu::run(&mut sys, g, 0, sssp::ScuVariant::enhanced());
            (widen(&d), r)
        }
        (Algorithm::Cc, Mode::GpuBaseline) => {
            let (d, r) = cc::gpu::run(&mut sys, g);
            (widen(&d), r)
        }
        (Algorithm::Cc, Mode::ScuBasic) => {
            let (d, r) = cc::scu::run(&mut sys, g, false);
            (widen(&d), r)
        }
        (Algorithm::Cc, Mode::ScuFilteringOnly) | (Algorithm::Cc, Mode::ScuEnhanced) => {
            let (d, r) = cc::scu::run(&mut sys, g, true);
            (widen(&d), r)
        }
        (Algorithm::KCore, Mode::GpuBaseline) => {
            let (d, r) = kcore::gpu::run(&mut sys, g);
            (widen(&d), r)
        }
        (Algorithm::KCore, _) => {
            let (d, r) = kcore::scu::run(&mut sys, g);
            (widen(&d), r)
        }
        (Algorithm::PageRank, Mode::GpuBaseline) => {
            let (d, r) = pagerank::gpu::run(&mut sys, g, pr_iters);
            (quantise(&d), r)
        }
        (Algorithm::PageRank, _) => {
            let (d, r) = pagerank::scu::run(&mut sys, g, pr_iters);
            (quantise(&d), r)
        }
    };
    let timeline = sys
        .take_timeline()
        .expect("every algorithm run records a timeline");
    RunOutput {
        values,
        report,
        timeline,
    }
}

fn widen(d: &[u32]) -> Vec<u64> {
    d.iter().map(|&x| x as u64).collect()
}

fn quantise(r: &[f64]) -> Vec<u64> {
    r.iter().map(|&x| (x * 1e9).round() as u64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scu_graph::Dataset;

    #[test]
    fn all_modes_agree_on_answers() {
        let g = Dataset::Cond.build(1.0 / 256.0, 11);
        for algo in [
            Algorithm::Bfs,
            Algorithm::Sssp,
            Algorithm::PageRank,
            Algorithm::Cc,
            Algorithm::KCore,
        ] {
            let base = run(algo, &g, SystemKind::Tx1, Mode::GpuBaseline);
            for mode in [Mode::ScuBasic, Mode::ScuEnhanced] {
                let out = run(algo, &g, SystemKind::Tx1, mode);
                assert_eq!(out.values, base.values, "{algo} {mode}");
            }
        }
    }

    #[test]
    fn mode_metadata() {
        assert!(!Mode::GpuBaseline.uses_scu());
        assert!(Mode::ScuEnhanced.uses_scu());
        assert_eq!(Algorithm::PageRank.name(), "PR");
        assert_eq!(Mode::ScuBasic.to_string(), "scu-basic");
        assert_eq!(Algorithm::Sssp.to_string(), "SSSP");
    }

    #[test]
    fn gtx980_also_runs() {
        let g = Dataset::Cond.build(1.0 / 256.0, 11);
        let base = run(Algorithm::Bfs, &g, SystemKind::Gtx980, Mode::GpuBaseline);
        let enh = run(Algorithm::Bfs, &g, SystemKind::Gtx980, Mode::ScuEnhanced);
        assert_eq!(base.values, enh.values);
        assert!(base.report.total_time_ns() > 0.0);
    }
}

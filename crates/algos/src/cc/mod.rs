//! Connected components via frontier-based minimum-label propagation —
//! an *extension* beyond the paper's three primitives, demonstrating
//! that the SCU's operations cover other frontier algorithms unchanged.
//!
//! Every node starts labelled with its own ID; active nodes push their
//! label along out-edges, nodes whose label improves join the next
//! frontier, and the frontier is stream-compacted each iteration —
//! exactly the structure the SCU accelerates for BFS. On the
//! (undirected) generator graphs the fixed point is the connected
//! components; on directed graphs it is the directed min-label
//! fixed point (`label[v] = min id over nodes with a path to v`),
//! which is what [`mod@reference`] computes.

pub mod gpu;
pub mod reference;
pub mod scu;

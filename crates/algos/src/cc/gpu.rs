//! Baseline GPU connected components: frontier-based min-label
//! propagation with the same expansion/contraction + scan/scatter
//! structure as the paper's BFS and SSSP baselines.

use scu_gpu::buffer::DeviceArray;
use scu_graph::Csr;
use scu_trace::{IterGuard, PhaseGuard};

use crate::device_graph::DeviceGraph;
use crate::kernels::{edge_slot_map_into, gpu_exclusive_scan_into, ScanScratch};
use crate::report::{Phase, RunReport};
use crate::system::System;

/// Runs baseline GPU label propagation; returns the label fixed point
/// and the measured report.
pub fn run(sys: &mut System, g: &Csr) -> (Vec<u32>, RunReport) {
    sys.begin_trace("cc", false);
    let dg = DeviceGraph::upload(&mut sys.alloc, g);
    let n = g.num_nodes();
    let m = g.num_edges().max(1);

    let cap = 2 * m + n + 64;
    let mut labels: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, n);
    let mut nf: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, cap);
    let mut indexes: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, cap);
    let mut counts: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, cap);
    let mut base: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, cap);
    let mut ef: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, cap);
    let mut lf: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, cap);
    let mut flags: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, cap);
    let mut lut: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, n);

    // Init: every node labels itself and joins the first frontier.
    {
        let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
        sys.gpu.run(&mut sys.mem, "cc-init", n, |tid, ctx| {
            ctx.store(&mut labels, tid, tid as u32);
            ctx.store(&mut nf, tid, tid as u32);
        });
    }

    let mut frontier_len = n;
    let mut rounds = 0u64;
    let mut iter = 0u32;

    // Host staging reused across iterations so the loop body performs
    // no host allocation.
    let mut scan = ScanScratch::default();
    let mut rows: Vec<u32> = Vec::new();
    let mut pos: Vec<u32> = Vec::new();

    while frontier_len > 0 {
        rounds += 1;
        assert!(rounds <= n as u64 + 2, "CC failed to converge");
        iter += 1;
        let _iter = IterGuard::new(sys.probe(), iter);

        // ---- Expansion setup (processing). ----
        {
            let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
            sys.gpu
                .run(&mut sys.mem, "cc-expand-setup", frontier_len, |tid, ctx| {
                    let v = ctx.load(&nf, tid) as usize;
                    let lo = ctx.load(&dg.row_offsets, v);
                    let hi = ctx.load(&dg.row_offsets, v + 1);
                    let l = ctx.load(&labels, v);
                    ctx.alu(1);
                    ctx.store(&mut indexes, tid, lo);
                    ctx.store(&mut counts, tid, hi - lo);
                    ctx.store(&mut base, tid, l);
                });
        }

        // ---- Expansion scan + gather (compaction). ----
        let (offsets, total) = gpu_exclusive_scan_into(sys, &counts, frontier_len, &mut scan);
        let total = total as usize;
        if total == 0 {
            break;
        }
        assert!(total <= cap, "edge frontier overflow");
        edge_slot_map_into(&indexes, &counts, frontier_len, &mut rows, &mut pos);
        {
            let _p = PhaseGuard::new(sys.probe(), Phase::Compaction);
            sys.gpu
                .run(&mut sys.mem, "cc-expand-gather", total, |e, ctx| {
                    ctx.alu(3);
                    let row = rows[e] as usize;
                    ctx.load(&offsets, row);
                    let l = ctx.load(&base, row);
                    let p = pos[e] as usize;
                    let v = ctx.load(&dg.edges, p);
                    ctx.store(&mut ef, e, v);
                    ctx.store(&mut lf, e, l);
                });
        }

        // ---- Contraction: relax labels, dedup winners (processing). ----
        {
            let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
            sys.gpu
                .run(&mut sys.mem, "cc-contract-relax", total, |tid, ctx| {
                    let v = ctx.load(&ef, tid) as usize;
                    let l = ctx.load(&lf, tid);
                    let cur = ctx.load(&labels, v);
                    ctx.alu(1);
                    let improves = l < cur;
                    if improves {
                        ctx.store(&mut lut, v, tid as u32);
                        ctx.atomic_min_u32(&mut labels, v, l);
                    }
                    ctx.store(&mut flags, tid, improves as u32);
                });
            sys.gpu
                .run(&mut sys.mem, "cc-contract-owner", total, |tid, ctx| {
                    if ctx.load(&flags, tid) != 0 {
                        let v = ctx.load(&ef, tid) as usize;
                        let owner = ctx.load(&lut, v) == tid as u32;
                        ctx.store(&mut flags, tid, owner as u32);
                    }
                });
        }

        // ---- Contraction scan + scatter (compaction). ----
        let (noff, kept) = gpu_exclusive_scan_into(sys, &flags, total, &mut scan);
        {
            let _p = PhaseGuard::new(sys.probe(), Phase::Compaction);
            sys.gpu
                .run(&mut sys.mem, "cc-contract-scatter", total, |tid, ctx| {
                    if ctx.load(&flags, tid) != 0 {
                        let v = ctx.load(&ef, tid);
                        let off = ctx.load(&noff, tid) as usize;
                        ctx.store(&mut nf, off, v);
                    }
                });
        }

        frontier_len = kept as usize;
    }

    let report = sys.finish_trace();
    (labels.into_vec(), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::reference;
    use crate::system::SystemKind;
    use scu_graph::Dataset;

    #[test]
    fn matches_reference_on_datasets() {
        for d in [Dataset::Ca, Dataset::Cond, Dataset::Kron] {
            let g = d.build(1.0 / 256.0, 3);
            let mut sys = System::baseline(SystemKind::Tx1);
            let (labels, _) = run(&mut sys, &g);
            assert_eq!(labels, reference::labels(&g), "dataset {d}");
        }
    }

    #[test]
    fn compaction_phase_is_charged() {
        let g = Dataset::Cond.build(1.0 / 128.0, 3);
        let mut sys = System::baseline(SystemKind::Tx1);
        let (_, report) = run(&mut sys, &g);
        assert!(report.gpu_compaction.time_ns > 0.0);
        assert!(report.iterations >= 2);
    }
}

//! Connected components with compaction offloaded to the SCU.
//!
//! The offload maps onto exactly the operations BFS and SSSP use:
//! *Access Expansion Compaction* for the destination stream,
//! *Replication Compaction* for the pushed-label stream, and *Data
//! Compaction* for the next frontier. The enhanced variant reuses the
//! unique-best-cost filter with the pushed label as the cost — labels
//! only decrease, so the same monotonicity argument that makes SSSP
//! filtering safe applies verbatim.

use scu_core::hash::{FilterHash, FilterMode};
use scu_gpu::buffer::DeviceArray;
use scu_graph::Csr;
use scu_trace::{IterGuard, PhaseGuard};

use crate::device_graph::DeviceGraph;
use crate::report::{Phase, RunReport};
use crate::system::System;

/// Runs SCU-offloaded label propagation; `enhanced` adds the
/// unique-best-label filter pass. Returns the label fixed point and
/// the measured report.
///
/// # Panics
///
/// Panics if `sys` has no SCU.
pub fn run(sys: &mut System, g: &Csr, enhanced: bool) -> (Vec<u32>, RunReport) {
    assert!(
        sys.scu.is_some(),
        "SCU CC requires a System::with_scu platform"
    );
    sys.begin_trace("cc", true);
    let dg = DeviceGraph::upload(&mut sys.alloc, g);
    let n = g.num_nodes();
    let m = g.num_edges().max(1);

    let cap = 2 * m + n + 64;
    let mut labels: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, n);
    let mut nf: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, cap);
    let mut indexes: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, cap);
    let mut counts: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, cap);
    let mut base: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, cap);
    let mut ef: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, cap);
    let mut lf: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, cap);
    let mut flags8: DeviceArray<u8> = DeviceArray::zeroed(&mut sys.alloc, cap);
    let mut filt8: DeviceArray<u8> = DeviceArray::zeroed(&mut sys.alloc, cap);
    let mut lut: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, n);

    let label_hash_cfg = sys
        .scu
        .as_ref()
        .expect("checked above")
        .config()
        .filter_sssp_hash;
    let mut label_hash = FilterHash::new(&mut sys.alloc, label_hash_cfg);

    {
        let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
        sys.gpu.run(&mut sys.mem, "cc-init", n, |tid, ctx| {
            ctx.store(&mut labels, tid, tid as u32);
            ctx.store(&mut nf, tid, tid as u32);
        });
    }

    let mut frontier_len = n;
    let mut rounds = 0u64;
    let mut iter = 0u32;

    while frontier_len > 0 {
        rounds += 1;
        assert!(rounds <= n as u64 + 2, "CC failed to converge");
        iter += 1;
        let _iter = IterGuard::new(sys.probe(), iter);

        // ---- Expansion setup (processing). ----
        {
            let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
            sys.gpu
                .run(&mut sys.mem, "cc-expand-setup", frontier_len, |tid, ctx| {
                    let v = ctx.load(&nf, tid) as usize;
                    let lo = ctx.load(&dg.row_offsets, v);
                    let hi = ctx.load(&dg.row_offsets, v + 1);
                    let l = ctx.load(&labels, v);
                    ctx.alu(1);
                    ctx.store(&mut indexes, tid, lo);
                    ctx.store(&mut counts, tid, hi - lo);
                    ctx.store(&mut base, tid, l);
                });
        }

        // ---- Expansion on the SCU. ----
        let total = {
            let _p = PhaseGuard::new(sys.probe(), Phase::Compaction);
            let scu = sys.scu.as_mut().expect("checked above");
            let total = scu
                .access_expansion_compaction(
                    &mut sys.mem,
                    &dg.edges,
                    &indexes,
                    &counts,
                    frontier_len,
                    None,
                    None,
                    &mut ef,
                )
                .elements_out as usize;
            scu.replication_compaction(
                &mut sys.mem,
                &base,
                &counts,
                frontier_len,
                None,
                None,
                &mut lf,
            );
            total
        };
        if total == 0 {
            break;
        }

        // ---- Contraction relax + owner dedup (processing). ----
        {
            let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
            sys.gpu
                .run(&mut sys.mem, "cc-contract-relax", total, |tid, ctx| {
                    let v = ctx.load(&ef, tid) as usize;
                    let l = ctx.load(&lf, tid);
                    let cur = ctx.load(&labels, v);
                    ctx.alu(1);
                    let improves = l < cur;
                    if improves {
                        ctx.store(&mut lut, v, tid as u32);
                        ctx.atomic_min_u32(&mut labels, v, l);
                    }
                    ctx.store(&mut flags8, tid, improves as u8);
                });
            sys.gpu
                .run(&mut sys.mem, "cc-contract-owner", total, |tid, ctx| {
                    if ctx.load(&flags8, tid) != 0 {
                        let v = ctx.load(&ef, tid) as usize;
                        let owner = ctx.load(&lut, v) == tid as u32;
                        ctx.store(&mut flags8, tid, owner as u8);
                    }
                });
        }

        // ---- Contraction compaction on the SCU. ----
        let _p = PhaseGuard::new(sys.probe(), Phase::Compaction);
        let scu = sys.scu.as_mut().expect("checked above");
        let final_flags = if enhanced {
            // Unique-best-label: drops frontier insertions whose label
            // cannot improve on one already scheduled.
            scu.filter_pass_data(
                &mut sys.mem,
                &ef,
                total,
                Some(&flags8),
                FilterMode::UniqueBestCost,
                Some(&lf),
                &mut label_hash,
                &mut filt8,
            );
            &filt8
        } else {
            &flags8
        };
        let kept = scu
            .data_compaction_n(
                &mut sys.mem,
                &ef,
                total,
                Some(final_flags),
                None,
                &mut nf,
                0,
            )
            .elements_out as usize;

        frontier_len = kept;
    }

    let report = sys.finish_trace();
    (labels.into_vec(), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::{gpu, reference};
    use crate::system::SystemKind;
    use scu_graph::Dataset;

    #[test]
    fn basic_matches_reference() {
        for d in [Dataset::Ca, Dataset::Cond] {
            let g = d.build(1.0 / 256.0, 3);
            let mut sys = System::with_scu(SystemKind::Tx1);
            let (labels, _) = run(&mut sys, &g, false);
            assert_eq!(labels, reference::labels(&g), "dataset {d}");
        }
    }

    #[test]
    fn enhanced_matches_reference() {
        for d in [Dataset::Ca, Dataset::Cond, Dataset::Kron] {
            let g = d.build(1.0 / 256.0, 3);
            let mut sys = System::with_scu(SystemKind::Tx1);
            let (labels, _) = run(&mut sys, &g, true);
            assert_eq!(labels, reference::labels(&g), "dataset {d}");
        }
    }

    #[test]
    fn enhanced_reduces_gpu_work_vs_baseline() {
        let g = Dataset::Kron.build(1.0 / 128.0, 5);
        let mut base_sys = System::baseline(SystemKind::Tx1);
        let (_, base) = gpu::run(&mut base_sys, &g);
        let mut scu_sys = System::with_scu(SystemKind::Tx1);
        let (_, enh) = run(&mut scu_sys, &g, true);
        assert!(
            (enh.gpu_thread_insts() as f64) < base.gpu_thread_insts() as f64 * 0.8,
            "insts {} vs {}",
            enh.gpu_thread_insts(),
            base.gpu_thread_insts()
        );
    }

    #[test]
    fn component_counts_agree() {
        let g = Dataset::Ca.build(1.0 / 256.0, 8);
        let mut sys = System::with_scu(SystemKind::Tx1);
        let (labels, _) = run(&mut sys, &g, true);
        let expect = reference::count_components(&reference::labels(&g));
        assert_eq!(reference::count_components(&labels), expect);
    }
}

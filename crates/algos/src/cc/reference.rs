//! Exact host min-label fixed point.

use scu_graph::Csr;

/// The minimum-label fixed point: `labels[v]` is the smallest node ID
/// with a directed path to `v` (including `v` itself). On undirected
/// graphs this identifies connected components.
pub fn labels(g: &Csr) -> Vec<u32> {
    let n = g.num_nodes();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for v in 0..n as u32 {
            let l = labels[v as usize];
            for &w in g.neighbors(v) {
                if l < labels[w as usize] {
                    labels[w as usize] = l;
                    changed = true;
                }
            }
        }
    }
    labels
}

/// Number of distinct labels (components on undirected graphs).
pub fn count_components(labels: &[u32]) -> usize {
    let mut seen: Vec<u32> = labels.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scu_graph::GraphBuilder;

    #[test]
    fn two_components() {
        let mut b = GraphBuilder::new(5);
        b.add_undirected(0, 1, 1)
            .add_undirected(1, 2, 1)
            .add_undirected(3, 4, 1);
        let g = b.build();
        let l = labels(&g);
        assert_eq!(l, vec![0, 0, 0, 3, 3]);
        assert_eq!(count_components(&l), 2);
    }

    #[test]
    fn isolated_nodes_keep_own_label() {
        let g = GraphBuilder::new(3).build();
        let l = labels(&g);
        assert_eq!(l, vec![0, 1, 2]);
        assert_eq!(count_components(&l), 3);
    }

    #[test]
    fn directed_propagation_semantics() {
        // 2 -> 0: node 0 adopts label 0 (own), node 2 keeps 2 since
        // nothing points at it; 0 gets min(0, 2)=0.
        let mut b = GraphBuilder::new(3);
        b.add_edge(2, 0, 1).add_edge(0, 1, 1);
        let g = b.build();
        assert_eq!(labels(&g), vec![0, 0, 2]);
    }

    #[test]
    fn fully_connected_is_one_component() {
        let mut b = GraphBuilder::new(4);
        for i in 0..4u32 {
            for j in 0..4u32 {
                if i != j {
                    b.add_edge(i, j, 1);
                }
            }
        }
        let l = labels(&b.build());
        assert!(l.iter().all(|&x| x == 0));
    }
}

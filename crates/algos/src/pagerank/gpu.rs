//! Baseline GPU PageRank (Geil et al., §2.3).
//!
//! Every node is active every iteration. The expansion phase
//! materialises the edge frontier and the per-edge contribution
//! frontier (stream compaction); rank update issues an `atomicAdd`
//! per edge; dampening and the convergence check are regular,
//! GPU-friendly kernels.

use scu_gpu::buffer::DeviceArray;
use scu_graph::Csr;
use scu_trace::{IterGuard, PhaseGuard};

use crate::device_graph::DeviceGraph;
use crate::kernels::{edge_slot_map_into, gpu_exclusive_scan_into, ScanScratch};
use crate::report::{Phase, RunReport};
use crate::system::System;

use super::{DAMPING, EPSILON};

/// Runs baseline GPU PageRank for at most `max_iters` iterations;
/// returns the ranks and the measured report.
pub fn run(sys: &mut System, g: &Csr, max_iters: u32) -> (Vec<f64>, RunReport) {
    sys.begin_trace("pr", false);
    let dg = DeviceGraph::upload(&mut sys.alloc, g);
    let n = g.num_nodes();
    let m = g.num_edges().max(1);

    let mut rank: DeviceArray<f64> = DeviceArray::zeroed(&mut sys.alloc, n);
    let mut incoming: DeviceArray<f64> = DeviceArray::zeroed(&mut sys.alloc, n);
    let mut contrib: DeviceArray<f64> = DeviceArray::zeroed(&mut sys.alloc, n.max(1));
    let mut indexes: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, n.max(1));
    let mut counts: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, n.max(1));
    let mut ef: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, m);
    let mut wf: DeviceArray<f64> = DeviceArray::zeroed(&mut sys.alloc, m);
    let mut diff_blocks: DeviceArray<f64> =
        DeviceArray::zeroed(&mut sys.alloc, n.div_ceil(256).max(1));

    {
        let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
        sys.gpu.run(&mut sys.mem, "pr-init", n, |tid, ctx| {
            ctx.store(&mut rank, tid, 1.0);
        });
    }

    let mut iter = 0u32;

    // Host staging reused across iterations so the loop body performs
    // no host allocation.
    let mut scan = ScanScratch::default();
    let mut rows: Vec<u32> = Vec::new();
    let mut pos: Vec<u32> = Vec::new();

    for _ in 0..max_iters {
        iter += 1;
        let _iter = IterGuard::new(sys.probe(), iter);

        // ---- Contribution + setup (processing). ----
        {
            let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
            sys.gpu.run(&mut sys.mem, "pr-contrib", n, |tid, ctx| {
                let r = ctx.load(&rank, tid);
                let lo = ctx.load(&dg.row_offsets, tid);
                let hi = ctx.load(&dg.row_offsets, tid + 1);
                ctx.alu(2); // degree + divide
                let deg = hi - lo;
                let c = if deg == 0 { 0.0 } else { r / deg as f64 };
                ctx.store(&mut contrib, tid, c);
                ctx.store(&mut indexes, tid, lo);
                ctx.store(&mut counts, tid, deg);
            });
        }

        // ---- Expansion: scan + gather (compaction). ----
        let (offsets, total) = gpu_exclusive_scan_into(sys, &counts, n, &mut scan);
        let total = total as usize;
        // Load-balanced gather: one thread per edge slot.
        edge_slot_map_into(&indexes, &counts, n, &mut rows, &mut pos);
        {
            let _p = PhaseGuard::new(sys.probe(), Phase::Compaction);
            sys.gpu
                .run(&mut sys.mem, "pr-expand-gather", total, |e, ctx| {
                    ctx.alu(3); // merge-path binary search (amortised)
                    let row = rows[e] as usize;
                    ctx.load(&offsets, row);
                    let c = ctx.load(&contrib, row);
                    let p = pos[e] as usize;
                    let v = ctx.load(&dg.edges, p);
                    ctx.store(&mut ef, e, v);
                    ctx.store(&mut wf, e, c);
                });
        }

        // ---- Rank update: zero + atomicAdd per edge (processing). ----
        let mut max_diff = 0.0f64;
        {
            let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
            sys.gpu.run(&mut sys.mem, "pr-zero", n, |tid, ctx| {
                ctx.store(&mut incoming, tid, 0.0);
            });
            sys.gpu
                .run(&mut sys.mem, "pr-rank-update", total, |tid, ctx| {
                    let e = ctx.load(&ef, tid) as usize;
                    let c = ctx.load(&wf, tid);
                    ctx.atomic_add(&mut incoming, e, c);
                });

            // ---- Dampening + convergence check (processing). ----
            sys.gpu.run(&mut sys.mem, "pr-dampen-check", n, |tid, ctx| {
                let old = ctx.load(&rank, tid);
                let inc = ctx.load(&incoming, tid);
                ctx.alu(4);
                let new = (1.0 - DAMPING) + DAMPING * inc;
                ctx.store(&mut rank, tid, new);
                let d = (new - old).abs();
                max_diff = max_diff.max(d);
                if tid % 256 == 0 {
                    // Block-level reduction publishes one value per block.
                    ctx.store(&mut diff_blocks, tid / 256, 0.0);
                }
            });
        }

        if max_diff < EPSILON {
            break;
        }
    }

    let report = sys.finish_trace();
    (rank.into_vec(), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::reference;
    use crate::system::SystemKind;
    use scu_graph::Dataset;

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-9, "rank {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_reference() {
        for d in [Dataset::Cond, Dataset::Kron] {
            let g = d.build(1.0 / 256.0, 3);
            let mut sys = System::baseline(SystemKind::Tx1);
            let (ranks, report) = run(&mut sys, &g, 20);
            let (expect, iters) = reference::ranks(&g, 20);
            assert_close(&ranks, &expect);
            assert_eq!(report.iterations, iters, "dataset {d}");
        }
    }

    #[test]
    fn atomics_dominate_rank_update() {
        let g = Dataset::Kron.build(1.0 / 64.0, 5);
        let mut sys = System::baseline(SystemKind::Tx1);
        let (_, report) = run(&mut sys, &g, 3);
        // One atomic per edge per iteration.
        assert_eq!(report.gpu_processing.atomics, 3 * g.num_edges() as u64);
    }

    #[test]
    fn compaction_fraction_moderate() {
        // PR's access pattern is more regular; compaction share should
        // be present but below BFS/SSSP levels (Figure 1).
        let g = Dataset::Cond.build(1.0 / 64.0, 3);
        let mut sys = System::baseline(SystemKind::Tx1);
        let (_, report) = run(&mut sys, &g, 3);
        let f = report.compaction_fraction();
        assert!(f > 0.05 && f < 0.7, "compaction fraction {f}");
    }
}

//! PageRank with expansion offloaded to the SCU (Algorithm 3).
//!
//! The GPU prepares the `indexes`/`count`/pre-divided weight vectors;
//! the SCU generates the edge frontier (*Access Expansion Compaction*)
//! and the contribution frontier (*Replication Compaction*). Rank
//! update, dampening and the convergence check stay on the GPU. The
//! enhanced filtering/grouping capabilities are not used (§4.6).

use scu_gpu::buffer::DeviceArray;
use scu_graph::Csr;
use scu_trace::{IterGuard, PhaseGuard};

use crate::device_graph::DeviceGraph;
use crate::report::{Phase, RunReport};
use crate::system::System;

use super::{DAMPING, EPSILON};

/// Runs SCU-offloaded PageRank for at most `max_iters` iterations;
/// returns the ranks and the measured report.
///
/// # Panics
///
/// Panics if `sys` has no SCU.
pub fn run(sys: &mut System, g: &Csr, max_iters: u32) -> (Vec<f64>, RunReport) {
    assert!(
        sys.scu.is_some(),
        "SCU PageRank requires a System::with_scu platform"
    );
    sys.begin_trace("pr", true);
    let dg = DeviceGraph::upload(&mut sys.alloc, g);
    let n = g.num_nodes();
    let m = g.num_edges().max(1);

    let mut rank: DeviceArray<f64> = DeviceArray::zeroed(&mut sys.alloc, n);
    let mut incoming: DeviceArray<f64> = DeviceArray::zeroed(&mut sys.alloc, n);
    let mut contrib: DeviceArray<f64> = DeviceArray::zeroed(&mut sys.alloc, n.max(1));
    let mut indexes: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, n.max(1));
    let mut counts: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, n.max(1));
    let mut ef: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, m);
    let mut wf: DeviceArray<f64> = DeviceArray::zeroed(&mut sys.alloc, m);
    let mut diff_blocks: DeviceArray<f64> =
        DeviceArray::zeroed(&mut sys.alloc, n.div_ceil(256).max(1));

    {
        let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
        sys.gpu.run(&mut sys.mem, "pr-init", n, |tid, ctx| {
            ctx.store(&mut rank, tid, 1.0);
        });
    }

    let mut iter = 0u32;
    for _ in 0..max_iters {
        iter += 1;
        let _iter = IterGuard::new(sys.probe(), iter);

        // ---- Contribution + setup (processing). ----
        {
            let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
            sys.gpu.run(&mut sys.mem, "pr-contrib", n, |tid, ctx| {
                let r = ctx.load(&rank, tid);
                let lo = ctx.load(&dg.row_offsets, tid);
                let hi = ctx.load(&dg.row_offsets, tid + 1);
                ctx.alu(2);
                let deg = hi - lo;
                let c = if deg == 0 { 0.0 } else { r / deg as f64 };
                ctx.store(&mut contrib, tid, c);
                ctx.store(&mut indexes, tid, lo);
                ctx.store(&mut counts, tid, deg);
            });
        }

        // ---- Expansion on the SCU (Algorithm 3). ----
        let total = {
            let _p = PhaseGuard::new(sys.probe(), Phase::Compaction);
            let scu = sys.scu.as_mut().expect("checked above");
            let total = scu
                .access_expansion_compaction(
                    &mut sys.mem,
                    &dg.edges,
                    &indexes,
                    &counts,
                    n,
                    None,
                    None,
                    &mut ef,
                )
                .elements_out as usize;
            scu.replication_compaction(&mut sys.mem, &contrib, &counts, n, None, None, &mut wf);
            total
        };

        // ---- Rank update (processing). ----
        let mut max_diff = 0.0f64;
        {
            let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
            sys.gpu.run(&mut sys.mem, "pr-zero", n, |tid, ctx| {
                ctx.store(&mut incoming, tid, 0.0);
            });
            sys.gpu
                .run(&mut sys.mem, "pr-rank-update", total, |tid, ctx| {
                    let e = ctx.load(&ef, tid) as usize;
                    let c = ctx.load(&wf, tid);
                    ctx.atomic_add(&mut incoming, e, c);
                });

            // ---- Dampening + convergence check (processing). ----
            sys.gpu.run(&mut sys.mem, "pr-dampen-check", n, |tid, ctx| {
                let old = ctx.load(&rank, tid);
                let inc = ctx.load(&incoming, tid);
                ctx.alu(4);
                let new = (1.0 - DAMPING) + DAMPING * inc;
                ctx.store(&mut rank, tid, new);
                let d = (new - old).abs();
                max_diff = max_diff.max(d);
                if tid % 256 == 0 {
                    ctx.store(&mut diff_blocks, tid / 256, 0.0);
                }
            });
        }

        if max_diff < EPSILON {
            break;
        }
    }

    let report = sys.finish_trace();
    (rank.into_vec(), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::{gpu, reference};
    use crate::system::SystemKind;
    use scu_graph::Dataset;

    #[test]
    fn matches_reference() {
        for d in [Dataset::Cond, Dataset::Kron] {
            let g = d.build(1.0 / 256.0, 3);
            let mut sys = System::with_scu(SystemKind::Tx1);
            let (ranks, _) = run(&mut sys, &g, 20);
            let (expect, _) = reference::ranks(&g, 20);
            for (i, (x, y)) in ranks.iter().zip(&expect).enumerate() {
                assert!((x - y).abs() < 1e-9, "{d} rank {i}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn offload_removes_gpu_compaction_kernels() {
        let g = Dataset::Cond.build(1.0 / 128.0, 3);
        let mut sys = System::with_scu(SystemKind::Tx1);
        let (_, report) = run(&mut sys, &g, 3);
        assert_eq!(report.gpu_compaction.launches, 0);
        assert!(report.scu.ops > 0);
    }

    #[test]
    fn scu_benefit_modest_on_pr() {
        // §6.2: PR gains little (or loses slightly on the GTX980)
        // because every node is active and the accesses are regular.
        let g = Dataset::Cond.build(1.0 / 64.0, 3);
        let mut base_sys = System::baseline(SystemKind::Tx1);
        let (_, base) = gpu::run(&mut base_sys, &g, 3);
        let mut scu_sys = System::with_scu(SystemKind::Tx1);
        let (_, with_scu) = run(&mut scu_sys, &g, 3);
        let speedup = with_scu.speedup_vs(&base);
        assert!(
            speedup > 0.5 && speedup < 2.5,
            "PR speedup {speedup} outside the plausible band"
        );
    }
}

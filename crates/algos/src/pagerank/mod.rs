//! PageRank (paper §2.3, §3.5, §4.6).
//!
//! * [`mod@reference`] — exact host power iteration.
//! * [`gpu`] — the baseline GPU implementation after Geil et al.: per
//!   iteration an expansion (edge/contribution frontier generation —
//!   stream compaction), a rank-update phase issuing one `atomicAdd`
//!   per edge, a dampening phase and a convergence check.
//! * [`scu`] — Algorithm 3: expansion offloaded to the SCU (*Access
//!   Expansion Compaction* for edges, *Replication Compaction* for
//!   contributions). PR visits every node every iteration, so the
//!   enhanced filtering/grouping features do not apply (§4.6).

pub mod gpu;
pub mod reference;
pub mod scu;

/// Damping factor used throughout (the paper's α).
pub const DAMPING: f64 = 0.85;

/// Convergence epsilon on the maximum per-node rank change.
pub const EPSILON: f64 = 1e-4;

/// Safety cap on iterations (the evaluation fixes a small number of
/// power iterations; convergence usually needs fewer on our graphs).
pub const MAX_ITERS: u32 = 20;

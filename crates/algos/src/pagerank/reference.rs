//! Exact host PageRank power iteration.

use scu_graph::Csr;

use super::{DAMPING, EPSILON};

/// Runs power iteration until the maximum per-node change drops below
/// `EPSILON` or `max_iters` is reached; returns the ranks and the
/// number of iterations executed.
pub fn ranks(g: &Csr, max_iters: u32) -> (Vec<f64>, u32) {
    let n = g.num_nodes();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let mut rank = vec![1.0f64; n];
    let mut iters = 0;
    for _ in 0..max_iters {
        iters += 1;
        let mut incoming = vec![0.0f64; n];
        for v in 0..n as u32 {
            let deg = g.degree(v);
            if deg == 0 {
                continue;
            }
            let contrib = rank[v as usize] / deg as f64;
            for &w in g.neighbors(v) {
                incoming[w as usize] += contrib;
            }
        }
        let mut max_diff = 0.0f64;
        for v in 0..n {
            let new = (1.0 - DAMPING) + DAMPING * incoming[v];
            max_diff = max_diff.max((new - rank[v]).abs());
            rank[v] = new;
        }
        if max_diff < EPSILON {
            break;
        }
    }
    (rank, iters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scu_graph::GraphBuilder;

    #[test]
    fn symmetric_cycle_has_uniform_ranks() {
        let mut b = GraphBuilder::new(4);
        for i in 0..4u32 {
            b.add_edge(i, (i + 1) % 4, 1);
        }
        let g = b.build();
        let (r, _) = ranks(&g, 50);
        for v in 1..4 {
            assert!((r[v] - r[0]).abs() < 1e-9, "ranks {r:?} not uniform");
        }
    }

    #[test]
    fn hub_ranks_higher() {
        // Everyone points at node 0.
        let mut b = GraphBuilder::new(5);
        for i in 1..5u32 {
            b.add_edge(i, 0, 1);
        }
        b.add_edge(0, 1, 1);
        let g = b.build();
        let (r, _) = ranks(&g, 50);
        assert!(r[0] > r[2] && r[0] > r[3]);
    }

    #[test]
    fn converges_before_cap() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1).add_edge(1, 2, 1).add_edge(2, 0, 1);
        let g = b.build();
        let (_, iters) = ranks(&g, 100);
        assert!(iters < 100);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        let (r, iters) = ranks(&g, 10);
        assert!(r.is_empty());
        assert_eq!(iters, 0);
    }
}

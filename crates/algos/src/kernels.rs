//! Shared GPU kernel building blocks: the scan-based compaction
//! machinery of the baseline implementations and Merrill's warp
//! culling.

use scu_gpu::buffer::DeviceArray;
use scu_trace::PhaseGuard;

use crate::report::Phase;
use crate::system::System;

/// Runs the baseline GPU exclusive prefix-sum over `counts[0..n]` as
/// one kernel inside its own [`Phase::Compaction`] scope, and returns
/// the offsets array (device-resident) plus the total.
///
/// The data movement matches a CUB-style single-pass chained scan
/// (decoupled look-back): each element is read once and written once;
/// each 256-thread block additionally publishes its aggregate and
/// reads its predecessor's.
pub fn gpu_exclusive_scan(
    sys: &mut System,
    counts: &DeviceArray<u32>,
    n: usize,
) -> (DeviceArray<u32>, u32) {
    gpu_exclusive_scan_into(sys, counts, n, &mut ScanScratch::default())
}

/// Host-side staging reused across [`gpu_exclusive_scan_into`] calls,
/// so per-iteration scans inside algorithm loops allocate nothing.
///
/// Only host bookkeeping lives here; the scan's device arrays are
/// still allocated per call, keeping the device address sequence (and
/// with it the simulated access stream) identical to the plain
/// [`gpu_exclusive_scan`].
#[derive(Debug, Default)]
pub struct ScanScratch {
    block_start: Vec<u32>,
    running: Vec<u32>,
}

/// [`gpu_exclusive_scan`] with caller-owned host scratch.
pub fn gpu_exclusive_scan_into(
    sys: &mut System,
    counts: &DeviceArray<u32>,
    n: usize,
    scratch: &mut ScanScratch,
) -> (DeviceArray<u32>, u32) {
    let mut offsets: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, n.max(1));
    let n_blocks = n.div_ceil(256).max(1);
    let mut block_sums: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, n_blocks);

    let ScanScratch {
        block_start,
        running,
    } = scratch;
    block_start.clear();
    block_start.resize(n_blocks, 0);
    running.clear();
    running.resize(n_blocks, 0);

    let mut running_total = 0u32;
    for (b, start) in block_start.iter_mut().enumerate() {
        *start = running_total;
        let lo = b * 256;
        let hi = ((b + 1) * 256).min(n);
        running_total += (lo..hi).map(|i| counts.get(i)).sum::<u32>();
    }

    let _scan = PhaseGuard::new(sys.probe(), Phase::Compaction);
    sys.gpu.run(&mut sys.mem, "scan-chained", n, |tid, ctx| {
        let block = tid / 256;
        let v = ctx.load(counts, tid);
        ctx.alu(2); // shared-memory scan, amortised
        if tid % 256 == 0 {
            // Decoupled look-back: publish aggregate, read predecessor.
            ctx.store(&mut block_sums, block, 0);
            if block > 0 {
                ctx.load(&block_sums, block - 1);
            }
        }
        let off = block_start[block] + running[block];
        running[block] += v;
        ctx.store(&mut offsets, tid, off);
    });

    (offsets, running_total)
}

/// Host-side companion of Merrill-style load-balanced expansion:
/// maps every edge-frontier slot to its source row and CSR position.
///
/// The real kernels compute this on the fly with a merge-path binary
/// search over the scanned offsets (charged as a few ALU ops plus one
/// cached offsets load in the gather kernels); precomputing it host-
/// side keeps the simulated access pattern identical — consecutive
/// slots walk consecutive CSR positions within a row and jump between
/// rows — without re-deriving the search per thread.
pub fn edge_slot_map(
    indexes: &DeviceArray<u32>,
    counts: &DeviceArray<u32>,
    n: usize,
) -> (Vec<u32>, Vec<u32>) {
    let total: usize = (0..n).map(|i| counts.get(i) as usize).sum();
    let mut rows = Vec::with_capacity(total);
    let mut pos = Vec::with_capacity(total);
    edge_slot_map_into(indexes, counts, n, &mut rows, &mut pos);
    (rows, pos)
}

/// [`edge_slot_map`] into caller-owned buffers (cleared first), so
/// iteration loops reuse two allocations instead of building fresh
/// vectors per iteration.
pub fn edge_slot_map_into(
    indexes: &DeviceArray<u32>,
    counts: &DeviceArray<u32>,
    n: usize,
    rows: &mut Vec<u32>,
    pos: &mut Vec<u32>,
) {
    rows.clear();
    pos.clear();
    for i in 0..n {
        let start = indexes.get(i);
        for j in 0..counts.get(i) {
            rows.push(i as u32);
            pos.push(start + j);
        }
    }
}

/// Merrill-style warp culling state: a small per-warp history hash
/// that drops duplicate IDs appearing in the same warp's lanes.
///
/// The simulated engine executes threads in tid order, so a fresh
/// history per 32-thread window reproduces the hardware behaviour
/// deterministically. Instead of a `HashSet` cleared per warp, the
/// history is an epoch-stamped array over the ID space: `stamps[id] ==
/// epoch` means "seen this warp", and advancing the warp just bumps
/// the epoch — no clearing, no hashing, no allocation in the hot loop.
#[derive(Debug)]
pub struct WarpCull {
    current_warp: usize,
    epoch: u32,
    stamps: Vec<u32>,
}

impl WarpCull {
    /// Creates culling state for IDs in `0..ids` (one per kernel
    /// launch; `ids` is the graph's node count for frontier culling).
    pub fn new(ids: usize) -> Self {
        WarpCull {
            current_warp: 0,
            epoch: 1,
            stamps: vec![0; ids],
        }
    }

    /// Starts a fresh kernel launch: thread IDs restart at warp 0 and
    /// all previous history is forgotten (one epoch bump — no
    /// clearing). Equivalent to constructing a new `WarpCull`, minus
    /// the allocation.
    pub fn begin_launch(&mut self) {
        self.current_warp = 0;
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.stamps.fill(0);
                1
            }
        };
    }

    /// Returns `true` if `id` is the first occurrence within `tid`'s
    /// warp.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the `0..ids` range given to
    /// [`WarpCull::new`].
    pub fn first_in_warp(&mut self, tid: usize, id: u32) -> bool {
        let warp = tid / 32;
        if warp != self.current_warp {
            self.current_warp = warp;
            self.epoch = match self.epoch.checked_add(1) {
                Some(e) => e,
                // Epoch exhausted (needs 2^32 warps): restamp and
                // restart. Unreachable in practice, kept for soundness.
                None => {
                    self.stamps.fill(0);
                    1
                }
            };
        }
        let stamp = &mut self.stamps[id as usize];
        let first = *stamp != self.epoch;
        *stamp = self.epoch;
        first
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemKind;

    #[test]
    fn scan_matches_host_prefix_sum() {
        let mut sys = System::baseline(SystemKind::Tx1);
        let counts = DeviceArray::from_vec(&mut sys.alloc, vec![3u32, 0, 5, 2, 7, 1, 0, 4]);
        let (offsets, total) = gpu_exclusive_scan(&mut sys, &counts, 8);
        assert_eq!(offsets.as_slice(), &[0, 3, 3, 8, 10, 17, 18, 18]);
        assert_eq!(total, 22);
    }

    #[test]
    fn scan_charges_compaction_phase() {
        let mut sys = System::baseline(SystemKind::Tx1);
        let counts = DeviceArray::from_vec(&mut sys.alloc, vec![1u32; 1000]);
        sys.begin_trace("test", false);
        let _ = gpu_exclusive_scan(&mut sys, &counts, 1000);
        let report = sys.finish_trace();
        assert_eq!(report.gpu_compaction.launches, 1);
        assert!(report.gpu_compaction.time_ns > 0.0);
        assert_eq!(report.gpu_processing.launches, 0);
    }

    #[test]
    fn scan_spanning_many_blocks() {
        let mut sys = System::baseline(SystemKind::Tx1);
        let n = 1000;
        let counts = DeviceArray::from_vec(&mut sys.alloc, vec![2u32; n]);
        let (offsets, total) = gpu_exclusive_scan(&mut sys, &counts, n);
        assert_eq!(total, 2000);
        for i in 0..n {
            assert_eq!(offsets.get(i), 2 * i as u32);
        }
    }

    #[test]
    fn warp_cull_drops_in_warp_duplicates_only() {
        let mut cull = WarpCull::new(64);
        assert!(cull.first_in_warp(0, 42));
        assert!(!cull.first_in_warp(1, 42)); // same warp duplicate
        assert!(cull.first_in_warp(2, 43));
        // Next warp: history resets.
        assert!(cull.first_in_warp(32, 42));
    }

    #[test]
    fn warp_cull_begin_launch_forgets_history() {
        let mut cull = WarpCull::new(64);
        assert!(cull.first_in_warp(0, 7));
        assert!(!cull.first_in_warp(1, 7));
        cull.begin_launch();
        // Same warp index, fresh launch: 7 is new again.
        assert!(cull.first_in_warp(0, 7));
        assert!(!cull.first_in_warp(1, 7));
    }

    #[test]
    fn scan_into_reuses_scratch_identically() {
        let mut sys = System::baseline(SystemKind::Tx1);
        let counts = DeviceArray::from_vec(&mut sys.alloc, vec![3u32, 0, 5, 2, 7, 1, 0, 4]);
        let mut scratch = ScanScratch::default();
        let (a, ta) = gpu_exclusive_scan_into(&mut sys, &counts, 8, &mut scratch);
        let (b, tb) = gpu_exclusive_scan_into(&mut sys, &counts, 8, &mut scratch);
        assert_eq!(ta, tb);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn edge_slot_map_into_matches_allocating_form() {
        let mut sys = System::baseline(SystemKind::Tx1);
        let indexes = DeviceArray::from_vec(&mut sys.alloc, vec![0u32, 3, 3]);
        let counts = DeviceArray::from_vec(&mut sys.alloc, vec![3u32, 0, 2]);
        let (rows, pos) = edge_slot_map(&indexes, &counts, 3);
        let mut r2 = vec![99u32; 7]; // stale contents must be cleared
        let mut p2 = Vec::new();
        edge_slot_map_into(&indexes, &counts, 3, &mut r2, &mut p2);
        assert_eq!(rows, r2);
        assert_eq!(pos, p2);
    }
}

//! Golden-equivalence harness: the timeline-derived [`RunReport`] must
//! be field-for-field identical to the pre-refactor direct aggregation.
//!
//! The fixture in `tests/fixtures/golden_reports.json` was captured
//! from the seed tree *before* the trace-spine refactor (run with
//! `SCU_GOLDEN_CAPTURE=1` to regenerate after an intentional model
//! change). Each entry serialises the full `RunReport` — every counter,
//! every f64 — so any drift in the derived aggregation fails loudly.

use scu_algos::runner::{run_configured, Algorithm, Mode};
use scu_algos::system::SystemKind;
use scu_graph::Dataset;
use serde_json::Value;

/// One small graph per algorithm, GPU baseline + enhanced SCU on both
/// platforms' cheaper one (TX1) — ten reports in a stable order.
fn golden_cases() -> Vec<(String, Value)> {
    let mut out = Vec::new();
    for algo in [
        Algorithm::Bfs,
        Algorithm::Sssp,
        Algorithm::PageRank,
        Algorithm::Cc,
        Algorithm::KCore,
    ] {
        let g = Dataset::Cond.build(1.0 / 256.0, 11);
        for mode in [Mode::GpuBaseline, Mode::ScuEnhanced] {
            let run = run_configured(algo, &g, SystemKind::Tx1, mode, 3, None);
            let name = format!("{}/{}", algo.name(), mode.name());
            out.push((name, serde_json::to_value(&run.report)));
        }
    }
    out
}

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_reports.json")
}

#[test]
fn reports_match_pre_refactor_fixture() {
    let cases = golden_cases();
    let rendered = Value::Object(cases.clone());
    if std::env::var("SCU_GOLDEN_CAPTURE").as_deref() == Ok("1") {
        let path = fixture_path();
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, serde_json::to_string_pretty(&rendered).unwrap()).unwrap();
        eprintln!(
            "captured {} golden reports to {}",
            cases.len(),
            path.display()
        );
        return;
    }
    let text = std::fs::read_to_string(fixture_path())
        .expect("fixture missing — run once with SCU_GOLDEN_CAPTURE=1");
    let golden: Value = serde_json::from_str(&text).unwrap();
    for (name, report) in &cases {
        let expect = golden
            .get(name)
            .unwrap_or_else(|| panic!("fixture has no entry for {name}"));
        assert_eq!(
            report, expect,
            "{name}: timeline-derived report diverges from the pre-refactor aggregation"
        );
    }
    assert_eq!(
        golden.as_object().map(<[_]>::len),
        Some(cases.len()),
        "fixture and case list cover the same set"
    );
}

//! The artifact-store invariant: a cell simulated on an mmap'd CSR
//! must produce a report byte-identical to the same cell on the
//! in-memory build. The graph source is an implementation detail of
//! where the words live; MODEL_VERSION does not change.

use std::sync::Arc;

use scu_algos::runner::{run_configured, Algorithm, Mode};
use scu_algos::system::SystemKind;
use scu_graph::artifact::GraphStore;
use scu_graph::Dataset;

/// One process-wide test (the artifact store install slot is global
/// state): build each graph in memory and through the store's mmap
/// path, then run cells on both and compare the serialised reports.
#[test]
fn mapped_and_owned_graphs_simulate_identically() {
    let dir = std::env::temp_dir().join(format!("scu-algos-artifact-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(GraphStore::new(&dir));

    for (dataset, scale, seed) in [
        (Dataset::Cond, 1.0 / 256.0, 11u64),
        (Dataset::Kron, 1.0 / 64.0, 42),
    ] {
        let owned = dataset.build(scale, seed);
        let build = || dataset.try_build(scale, seed);
        // First call publishes, second call mmaps the artifact.
        store.load_or_build(dataset, scale, seed, build).unwrap();
        let mapped = store.load_or_build(dataset, scale, seed, build).unwrap();
        assert!(mapped.is_mapped(), "{dataset}: second load should mmap");
        assert_eq!(mapped, owned, "{dataset}: CSR content must match");

        for algo in [Algorithm::Bfs, Algorithm::PageRank, Algorithm::KCore] {
            for mode in [Mode::GpuBaseline, Mode::ScuEnhanced] {
                let on_owned = run_configured(algo, &owned, SystemKind::Gtx980, mode, 3, None);
                let on_mapped = run_configured(algo, &mapped, SystemKind::Gtx980, mode, 3, None);
                assert_eq!(
                    serde_json::to_value(&on_owned.report),
                    serde_json::to_value(&on_mapped.report),
                    "{dataset}/{}/{}: report diverges between owned and mmap'd CSR",
                    algo.name(),
                    mode.name()
                );
                assert_eq!(
                    on_owned.values,
                    on_mapped.values,
                    "{dataset}/{}/{}: algorithm output diverges",
                    algo.name(),
                    mode.name()
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

//! Per-SM timing lanes for the threaded engine path.
//!
//! The engine's timing model has exactly one shared mutable resource:
//! the L2/DRAM [`scu_mem::MemorySystem`]. Each SM's L1 cache and
//! coalescer, by contrast, depend only on that SM's own warp order —
//! [`Cache::access`] never consults the next level. The lanes exploit
//! that split: after the sequential functional pass records every
//! warp's memory trace (phase A), each lane worker takes one SM's
//! traces plus its L1 cache and — in parallel with the other SMs —
//! compacts them into an ordered [`ReplayOp`] stream (phase B). The
//! engine then replays the streams against the shared memory system in
//! canonical warp-index order (phase C), so the L2/DRAM observes *the
//! exact access sequence* the sequential engine would have produced.
//!
//! Byte-identity at any thread count hinges on the replay stream
//! encoding not just L2 traffic but the full `total_latency_ns`
//! addition sequence: f64 summation is non-associative, so L1 *hits*
//! (a constant `l1_hit_latency_ns` add each) are recorded as run
//! lengths interleaved in program order with misses and atomics.

use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::Duration;

use scu_mem::cache::{AccessKind, Cache};
use scu_mem::coalescer::WarpCoalescer;
use scu_mem::line::{Addr, LineSize};

use crate::kernel::MemOp;

/// One ordered L2-bound replay action produced by a timing lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReplayOp {
    /// A run of consecutive L1 load hits: charge `l1_hit_latency_ns`
    /// once per hit, no L2 traffic.
    Hits(u32),
    /// An L1 load miss: charge the hit latency (lookup), then access
    /// the L2 and charge its latency.
    Miss(Addr),
    /// A coalesced store run: `lines` consecutive L1-bypassing write
    /// lines starting at `addr` (1 for a lone line), no latency charge.
    Store { addr: Addr, lines: u32 },
    /// An atomic line: L2 write access plus
    /// `atomic_latency_ns + access latency`.
    Atomic(Addr),
}

/// Per-warp trace header inside a [`LaneBuf`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct LaneWarp {
    /// Active lanes (threads) in this warp.
    pub lanes: u32,
    /// Max per-lane memory-op count — the warp's SIMT slot count.
    pub max_ops: u32,
    /// Max per-lane ALU count — the warp's compute slot count.
    pub alu_max: u64,
}

/// One SM's launch-local buffers, round-tripped between the engine and
/// a lane worker so steady-state launches allocate nothing.
///
/// Phase A (engine) fills `ops`/`lane_lens`/`warps`/`alu_total`; phase
/// B (worker) fills `replay`/`warp_replay` and every tally below. The
/// tallies are all order-insensitive integer sums, so merging them
/// per-SM after the parallel phase is deterministic at any worker
/// count — this is what lets the op classification the sequential
/// functional pass used to do run inside the parallel lanes instead.
#[derive(Debug, Default)]
pub(crate) struct LaneBuf {
    /// All recorded memory ops of this SM's warps, flat: warps in
    /// launch order, lanes within a warp in order, ops per lane in
    /// program order.
    pub ops: Vec<MemOp>,
    /// Per-lane op counts, `warps[i].lanes` entries per warp.
    pub lane_lens: Vec<u32>,
    /// Warp headers in launch order.
    pub warps: Vec<LaneWarp>,
    /// Sum of all lanes' ALU counts on this SM (phase A; the one
    /// per-thread scalar the functional pass still accumulates).
    pub alu_total: u64,
    /// Ordered replay stream, all warps concatenated.
    pub replay: Vec<ReplayOp>,
    /// Replay-op count per warp (parallel to `warps`).
    pub warp_replay: Vec<u32>,
    /// Memory slots (coalescer invocations) this SM issued.
    pub mem_slots: u64,
    /// Line transactions this SM issued (its L1 throughput load).
    pub transactions: u64,
    /// Load ops this SM's lanes classified.
    pub loads: u64,
    /// Store ops this SM's lanes classified.
    pub stores: u64,
    /// Atomic ops this SM's lanes classified.
    pub atomics: u64,
    /// Total memory ops (`Σ lane_lens`), for `thread_insts`.
    pub ops_total: u64,
    /// Issue slots (`Σ alu_max + max_ops` over warps) this SM used.
    pub slots: u64,
    /// Per-address atomic conflict counts on this SM.
    pub atomic_counts: HashMap<Addr, u64>,
}

impl LaneBuf {
    /// Clears all per-launch state, keeping allocations.
    pub fn begin_launch(&mut self) {
        self.ops.clear();
        self.lane_lens.clear();
        self.warps.clear();
        self.alu_total = 0;
        self.replay.clear();
        self.warp_replay.clear();
        self.mem_slots = 0;
        self.transactions = 0;
        self.loads = 0;
        self.stores = 0;
        self.atomics = 0;
        self.ops_total = 0;
        self.slots = 0;
        self.atomic_counts.clear();
    }
}

/// Immutable per-launch parameters a lane needs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LaneParams {
    pub line_size: LineSize,
    /// `line_size.bytes()`, precomputed for the store-run scan.
    pub line_bytes: u64,
    /// L1 and L2 lines coincide, enabling batched store runs
    /// (mirrors the sequential engine's gate exactly).
    pub same_line_size: bool,
}

/// Worker-local scratch (slot gather + coalescer output).
#[derive(Debug, Default)]
struct LaneScratch {
    loads: Vec<Addr>,
    stores: Vec<Addr>,
    atomics: Vec<Addr>,
    tx: Vec<Addr>,
    /// Per-lane start offsets of the current warp in the flat op
    /// buffer.
    offsets: Vec<usize>,
}

/// A unit of lane work: one SM's buffers and L1, sent to a worker and
/// sent back (ownership round-trip — no shared state, no `unsafe`).
#[derive(Debug)]
pub(crate) struct LaneTask {
    pub sm: usize,
    pub buf: LaneBuf,
    pub cache: Cache,
    pub params: LaneParams,
}

#[inline]
fn flush_hits(replay: &mut Vec<ReplayOp>, pending: &mut u32) {
    if *pending > 0 {
        replay.push(ReplayOp::Hits(*pending));
        *pending = 0;
    }
}

/// Runs one SM's timing lane: walks the recorded warp traces in order,
/// drives this SM's L1, and emits the ordered replay stream.
///
/// This is a line-for-line counterpart of the sequential engine's slot
/// loop; the only difference is that where the sequential loop touches
/// the shared `MemorySystem` or `total_latency_ns`, the lane emits a
/// [`ReplayOp`] instead.
fn simulate_lane(buf: &mut LaneBuf, cache: &mut Cache, params: LaneParams, sc: &mut LaneScratch) {
    let coalescer = WarpCoalescer::new(params.line_size);
    let mut op_base = 0usize;
    let mut len_base = 0usize;
    for warp in &buf.warps {
        let lanes = warp.lanes as usize;
        let lens = &buf.lane_lens[len_base..len_base + lanes];
        sc.offsets.clear();
        let mut acc = op_base;
        for &len in lens {
            sc.offsets.push(acc);
            acc += len as usize;
        }
        let replay_start = buf.replay.len();
        let mut pending_hits = 0u32;
        for j in 0..warp.max_ops {
            sc.loads.clear();
            sc.stores.clear();
            sc.atomics.clear();
            for (k, &len) in lens.iter().enumerate() {
                if j < len {
                    let op = buf.ops[sc.offsets[k] + j as usize];
                    if op.atomic {
                        sc.atomics.push(op.addr);
                    } else if op.write {
                        sc.stores.push(op.addr);
                    } else {
                        sc.loads.push(op.addr);
                    }
                }
            }
            // Classify while the ops are hot: each op lands in exactly
            // one slot of its lane, so these sums cover every op once.
            buf.loads += sc.loads.len() as u64;
            buf.stores += sc.stores.len() as u64;
            buf.atomics += sc.atomics.len() as u64;
            for &a in &sc.atomics {
                *buf.atomic_counts.entry(a).or_insert(0) += 1;
            }

            if !sc.loads.is_empty() {
                buf.mem_slots += 1;
                coalescer.transactions_into(&sc.loads, &mut sc.tx);
                for &line in sc.tx.iter() {
                    buf.transactions += 1;
                    if cache.access(line, AccessKind::Read).hit {
                        pending_hits += 1;
                    } else {
                        flush_hits(&mut buf.replay, &mut pending_hits);
                        buf.replay.push(ReplayOp::Miss(line));
                    }
                }
            }
            if !sc.stores.is_empty() {
                buf.mem_slots += 1;
                coalescer.transactions_into(&sc.stores, &mut sc.tx);
                buf.transactions += sc.tx.len() as u64;
                flush_hits(&mut buf.replay, &mut pending_hits);
                let mut i = 0;
                while i < sc.tx.len() {
                    let start = sc.tx[i];
                    let mut len = 1u64;
                    if params.same_line_size {
                        while i + (len as usize) < sc.tx.len()
                            && sc.tx[i + len as usize] == start + len * params.line_bytes
                        {
                            len += 1;
                        }
                    }
                    buf.replay.push(ReplayOp::Store {
                        addr: start,
                        lines: len as u32,
                    });
                    i += len as usize;
                }
            }
            if !sc.atomics.is_empty() {
                buf.mem_slots += 1;
                coalescer.transactions_into(&sc.atomics, &mut sc.tx);
                flush_hits(&mut buf.replay, &mut pending_hits);
                for &line in sc.tx.iter() {
                    buf.transactions += 1;
                    buf.replay.push(ReplayOp::Atomic(line));
                }
            }
        }
        flush_hits(&mut buf.replay, &mut pending_hits);
        buf.warp_replay
            .push((buf.replay.len() - replay_start) as u32);
        buf.slots += warp.alu_max + warp.max_ops as u64;
        buf.ops_total += (acc - op_base) as u64;
        op_base = acc;
        len_base += lanes;
    }
}

/// A persistent pool of lane workers, kept on the engine across
/// launches so the steady state spawns no threads.
///
/// SM `s` is always handled by worker `s % workers`, so a worker sees
/// its SMs' tasks in dispatch order; results return over one shared
/// channel in completion order and are re-slotted by `sm`.
#[derive(Debug)]
pub(crate) struct LanePool {
    senders: Vec<Sender<LaneTask>>,
    results: Receiver<LaneTask>,
    handles: Vec<JoinHandle<()>>,
}

impl LanePool {
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "lane pool needs at least one worker");
        let (res_tx, res_rx) = channel::<LaneTask>();
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let (task_tx, task_rx) = channel::<LaneTask>();
            let res = res_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("scu-lane-{i}"))
                .spawn(move || {
                    let mut scratch = LaneScratch::default();
                    while let Ok(mut task) = task_rx.recv() {
                        simulate_lane(&mut task.buf, &mut task.cache, task.params, &mut scratch);
                        if res.send(task).is_err() {
                            break;
                        }
                    }
                })
                .expect("failed to spawn lane worker");
            senders.push(task_tx);
            handles.push(handle);
        }
        LanePool {
            senders,
            results: res_rx,
            handles,
        }
    }

    /// Number of workers (the engine rebuilds the pool when the
    /// `SimThreads` knob changes).
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Queues one SM's lane task on its worker.
    pub fn dispatch(&self, task: LaneTask) {
        let w = task.sm % self.senders.len();
        self.senders[w]
            .send(task)
            .expect("lane worker exited unexpectedly");
    }

    /// Receives one completed lane task (any SM). A generous timeout
    /// turns a worker panic into a loud failure instead of a hang.
    pub fn collect(&self) -> LaneTask {
        self.results
            .recv_timeout(Duration::from_secs(60))
            .expect("lane worker stalled or panicked")
    }
}

impl Drop for LanePool {
    fn drop(&mut self) {
        // Closing the task channels ends each worker's recv loop.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scu_mem::cache::CacheConfig;

    fn buf_with(ops: &[MemOp], lens: &[u32]) -> LaneBuf {
        let mut buf = LaneBuf::default();
        buf.ops.extend_from_slice(ops);
        buf.lane_lens.extend_from_slice(lens);
        let max_ops = lens.iter().copied().max().unwrap_or(0);
        buf.warps.push(LaneWarp {
            lanes: lens.len() as u32,
            max_ops,
            alu_max: 0,
        });
        buf
    }

    fn params() -> LaneParams {
        LaneParams {
            line_size: LineSize::L128,
            line_bytes: 128,
            same_line_size: true,
        }
    }

    fn l1() -> Cache {
        Cache::new(CacheConfig::new(32 * 1024, LineSize::L128, 4).unwrap())
    }

    fn load(addr: Addr) -> MemOp {
        MemOp {
            addr,
            write: false,
            atomic: false,
        }
    }

    #[test]
    fn hits_coalesce_into_runs_between_misses() {
        // One lane: miss, hit, hit, miss(new line), hit.
        let ops = [load(0), load(4), load(8), load(128), load(132)];
        let mut buf = buf_with(&ops, &[5]);
        let mut cache = l1();
        simulate_lane(&mut buf, &mut cache, params(), &mut LaneScratch::default());
        assert_eq!(
            buf.replay,
            vec![
                ReplayOp::Miss(0),
                ReplayOp::Hits(2),
                ReplayOp::Miss(128),
                ReplayOp::Hits(1),
            ]
        );
        assert_eq!(buf.warp_replay, vec![4]);
        assert_eq!(buf.mem_slots, 5);
        assert_eq!(buf.transactions, 5);
    }

    #[test]
    fn consecutive_store_lines_batch_into_one_run() {
        // Two lanes store to adjacent lines in the same slot.
        let ops = [
            MemOp {
                addr: 0,
                write: true,
                atomic: false,
            },
            MemOp {
                addr: 128,
                write: true,
                atomic: false,
            },
        ];
        let mut buf = buf_with(&ops, &[1, 1]);
        let mut cache = l1();
        simulate_lane(&mut buf, &mut cache, params(), &mut LaneScratch::default());
        assert_eq!(buf.replay, vec![ReplayOp::Store { addr: 0, lines: 2 }]);
        assert_eq!(buf.transactions, 2);
        assert_eq!(buf.mem_slots, 1);
    }

    #[test]
    fn atomics_flush_pending_hits_first() {
        let ops = [
            load(0),
            load(0), // hit after the miss warms the line
            MemOp {
                addr: 0,
                write: true,
                atomic: true,
            },
        ];
        let mut buf = buf_with(&ops, &[3]);
        let mut cache = l1();
        simulate_lane(&mut buf, &mut cache, params(), &mut LaneScratch::default());
        assert_eq!(
            buf.replay,
            vec![ReplayOp::Miss(0), ReplayOp::Hits(1), ReplayOp::Atomic(0)]
        );
    }

    #[test]
    fn lanes_classify_ops_and_count_slots() {
        let ops = [
            load(0),
            MemOp {
                addr: 128,
                write: true,
                atomic: false,
            },
            MemOp {
                addr: 0,
                write: true,
                atomic: true,
            },
            MemOp {
                addr: 0,
                write: true,
                atomic: true,
            },
        ];
        let mut buf = buf_with(&ops, &[4]);
        buf.warps[0].alu_max = 5;
        let mut cache = l1();
        simulate_lane(&mut buf, &mut cache, params(), &mut LaneScratch::default());
        assert_eq!(buf.loads, 1);
        assert_eq!(buf.stores, 1);
        assert_eq!(buf.atomics, 2);
        assert_eq!(buf.ops_total, 4);
        assert_eq!(buf.slots, 5 + 4, "alu_max + max_ops");
        assert_eq!(buf.atomic_counts.get(&0), Some(&2));
    }

    #[test]
    fn pool_round_trips_tasks_and_preserves_sm_tag() {
        let pool = LanePool::new(2);
        for sm in 0..4 {
            let buf = buf_with(&[load(sm as Addr * 4096)], &[1]);
            pool.dispatch(LaneTask {
                sm,
                buf,
                cache: l1(),
                params: params(),
            });
        }
        let mut seen = [false; 4];
        for _ in 0..4 {
            let task = pool.collect();
            assert_eq!(task.buf.replay.len(), 1, "one miss per task");
            seen[task.sm] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

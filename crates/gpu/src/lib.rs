//! # scu-gpu — warp-level GPGPU execution and timing model
//!
//! This crate replaces the paper's GPGPU-Sim substrate with a
//! warp-level, trace-as-you-execute model. Graph kernels are written as
//! per-thread Rust closures that perform their *real* computation on
//! [`scu_mem::buffer::DeviceArray`] data while recording every load, store,
//! atomic and ALU burst through a [`kernel::ThreadCtx`]. The
//! [`engine::GpuEngine`] groups threads into warps of 32, coalesces
//! each warp memory instruction into cache-line transactions, runs them
//! through per-SM L1 caches and the shared
//! [`scu_mem::MemorySystem`], and produces a
//! [`stats::KernelStats`] with an execution-time estimate.
//!
//! The time estimate is a max-of-bounds (roofline) model: issue
//! throughput, L1 throughput, L2/DRAM service time, latency divided by
//! warp-level parallelism, and atomic serialisation. This captures the
//! first-order behaviours the paper's evaluation turns on — memory
//! divergence, cache pressure, bandwidth saturation and low
//! compute-to-memory ratios — without per-pipeline-stage simulation
//! (see `DESIGN.md` for the substitution argument).
//!
//! ## Example
//!
//! ```
//! use scu_gpu::{DeviceAllocator, DeviceArray, GpuConfig, GpuEngine};
//! use scu_mem::MemorySystem;
//!
//! let cfg = GpuConfig::tx1();
//! let mut mem = MemorySystem::new(cfg.memory.clone());
//! let mut engine = GpuEngine::new(cfg);
//! let mut alloc = DeviceAllocator::new();
//! let a: DeviceArray<u32> = DeviceArray::from_vec(&mut alloc, (0..1024).collect());
//! let mut b: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 1024);
//!
//! // b[i] = a[i] * 2, one thread per element.
//! let stats = engine.run(&mut mem, "double", 1024, |tid, ctx| {
//!     let v = ctx.load(&a, tid);
//!     ctx.alu(1);
//!     ctx.store(&mut b, tid, v * 2);
//! });
//! assert_eq!(b.as_slice()[10], 20);
//! assert!(stats.time_ns > 0.0);
//! ```

pub mod config;
pub mod engine;
pub mod kernel;
pub(crate) mod lanes;
pub mod stats;
pub mod threads;
pub mod trace_cache;

pub use config::GpuConfig;
pub use engine::GpuEngine;
pub use kernel::ThreadCtx;
pub use scu_mem::buffer;
pub use scu_mem::buffer::{DeviceAllocator, DeviceArray};
pub use stats::{KernelStats, TimeBounds};
pub use threads::{
    available_parallelism, parallelism_degraded, phase_profile, reset_phase_profile, PhaseProfile,
    SimThreads,
};
pub use trace_cache::{TraceCacheStats, TraceStore};

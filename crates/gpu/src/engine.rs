//! Warp-level kernel execution engine.
//!
//! Threads run sequentially (functional correctness is exact and
//! deterministic); timing is reconstructed warp-by-warp: the engine
//! aligns the j-th memory operation of each thread in a warp into one
//! SIMT memory instruction, coalesces its 32 addresses into line
//! transactions, and drives them through the per-SM L1 and the shared
//! L2/DRAM. Execution time is the max of throughput, bandwidth,
//! latency and atomic-serialisation bounds (see
//! [`crate::stats::TimeBounds`]).
//!
//! With [`SimThreads`] above 1 the timing reconstruction runs as three
//! phases — sequential functional pass, parallel per-SM timing lanes,
//! sequential ordered L2 replay (see [`crate::lanes`]) — and is
//! guaranteed byte-identical to the single-threaded path: the shared
//! [`MemorySystem`] observes the exact same access sequence and
//! `total_latency_ns` performs the exact same f64 addition sequence.

use std::collections::HashMap;
use std::time::Instant;

use scu_mem::cache::{AccessKind, Cache, CacheConfig};
use scu_mem::coalescer::WarpCoalescer;
use scu_mem::line::{Addr, LineSize};
use scu_mem::stats::CacheStats;
use scu_mem::system::{MemorySystem, TxRun};

use scu_trace::{Event, MemSource, Probe};

use crate::config::GpuConfig;
use crate::kernel::{MemOp, ThreadCtx};
use crate::lanes::{LaneBuf, LaneParams, LanePool, LaneTask, LaneWarp, ReplayOp};
use crate::stats::{KernelStats, TimeBounds};
use crate::threads::SimThreads;
use crate::trace_cache::{self, LaunchDisposition};

/// Time charged per serialised same-address atomic at the L2, ns.
///
/// Maxwell-class GPUs retire one conflicting atomic every couple of
/// cycles at the L2; 2 ns is the GPGPU-Sim-class figure.
const ATOMIC_THROUGHPUT_NS: f64 = 2.0;

/// Reusable per-launch scratch buffers, kept on the engine so the
/// warp loop — the hottest loop in the simulator — allocates nothing.
#[derive(Debug, Default)]
struct RunScratch {
    /// Per-lane recorded memory traces (one buffer per warp lane).
    warp_traces: Vec<Vec<MemOp>>,
    loads: Vec<Addr>,
    stores: Vec<Addr>,
    atomics: Vec<Addr>,
    /// Coalesced line transactions of the current slot.
    tx: Vec<Addr>,
    atomic_counts: HashMap<Addr, u64>,
}

/// Mutable launch accumulators threaded through the execution paths so
/// both the sequential loop and the three-phase pipeline fill the same
/// state.
struct LaunchTally<'a> {
    stats: &'a mut KernelStats,
    sm_slots: &'a mut [u64],
    sm_l1_tx: &'a mut [u64],
    total_latency_ns: &'a mut f64,
}

/// A minimal throwaway cache parked in an L1 slot while the real cache
/// is out on a lane worker (1 set x 1 way, trivial to allocate).
fn placeholder_cache() -> Cache {
    Cache::new(CacheConfig::new(128, LineSize::L128, 1).expect("static placeholder geometry"))
}

/// The GPU execution engine: owns per-SM L1 caches and executes kernel
/// launches against a shared [`MemorySystem`].
#[derive(Debug)]
pub struct GpuEngine {
    cfg: GpuConfig,
    l1s: Vec<Cache>,
    coalescer: WarpCoalescer,
    probe: Probe,
    scratch: RunScratch,
    /// Per-SM lane buffers, reused across launches (threaded path).
    lane_bufs: Vec<LaneBuf>,
    /// Persistent lane worker pool; built on the first threaded launch
    /// and rebuilt only when the effective thread count changes.
    pool: Option<LanePool>,
    /// Test-only pin of the thread count, bypassing the process-global
    /// [`SimThreads`] knob (parallel unit tests must not race on it).
    thread_override: Option<usize>,
}

impl GpuEngine {
    /// Creates an engine with cold L1 caches.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`GpuConfig::validate`].
    pub fn new(cfg: GpuConfig) -> Self {
        cfg.validate().expect("invalid GPU config");
        let l1s = (0..cfg.num_sms).map(|_| Cache::new(cfg.l1)).collect();
        let coalescer = WarpCoalescer::new(cfg.l1.line_size);
        GpuEngine {
            cfg,
            l1s,
            coalescer,
            probe: Probe::off(),
            scratch: RunScratch::default(),
            lane_bufs: Vec::new(),
            pool: None,
            thread_override: None,
        }
    }

    /// Pins this engine's timing-lane thread count, ignoring the
    /// process-global [`SimThreads`] knob. Unit tests run concurrently
    /// in one process, so they use this instead of the global.
    #[cfg(test)]
    fn set_thread_override(&mut self, n: Option<usize>) {
        self.thread_override = n;
    }

    /// The configuration this engine was built with.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Attaches (or detaches, with [`Probe::off`]) the trace probe
    /// through which launches emit [`Event::KernelLaunched`] /
    /// [`Event::KernelRetired`].
    pub fn set_probe(&mut self, probe: Probe) {
        self.probe = probe;
    }

    /// Invalidates all L1 caches (kernel-boundary behaviour of
    /// non-coherent GPU L1s can be approximated by calling this between
    /// launches; the default engine keeps them warm, which is the
    /// Maxwell behaviour for read-only data).
    pub fn flush_l1(&mut self) {
        for l1 in &mut self.l1s {
            l1.clear();
        }
    }

    /// Executes `threads` threads of `body` as one kernel launch.
    ///
    /// `name` labels the launch in debug output; it does not affect
    /// simulation. Returns the launch statistics including the
    /// execution-time estimate.
    pub fn run<F>(
        &mut self,
        mem: &mut MemorySystem,
        name: &str,
        threads: usize,
        mut body: F,
    ) -> KernelStats
    where
        F: FnMut(usize, &mut ThreadCtx),
    {
        if threads == 0 {
            return KernelStats::default();
        }
        self.probe.emit_with(|| Event::KernelLaunched {
            name: name.to_string(),
            threads: threads as u64,
        });

        let warp_size = self.cfg.warp_size as usize;
        let num_sms = self.cfg.num_sms as usize;
        let n_warps = threads.div_ceil(warp_size);

        let l1_before: Vec<CacheStats> = self.l1s.iter().map(|c| *c.stats()).collect();
        let mem_before = mem.stats();
        let service_before = mem.service_time_ns();

        let mut stats = KernelStats {
            launches: 1,
            threads: threads as u64,
            warps: n_warps as u64,
            ..KernelStats::default()
        };

        let mut sm_slots = vec![0u64; num_sms];
        let mut sm_l1_tx = vec![0u64; num_sms];
        let mut total_latency_ns = 0.0f64;

        // Batched store runs are only valid when L1 lines and L2 lines
        // coincide (they do on both modelled platforms).
        let line_bytes = self.cfg.l1.line_size.bytes() as u64;
        let params = LaneParams {
            line_size: self.cfg.l1.line_size,
            line_bytes,
            same_line_size: line_bytes == mem.config().l2.line_size.bytes() as u64,
        };

        // Effective lane count: the SimThreads knob (or a test pin),
        // capped at one lane per SM. Launches under one warp per SM
        // stay sequential — fan-out overhead would dominate, and the
        // result is byte-identical on either path.
        let workers = self
            .thread_override
            .unwrap_or_else(SimThreads::get)
            .clamp(1, num_sms);
        self.scratch.atomic_counts.clear();
        let mut tally = LaunchTally {
            stats: &mut stats,
            sm_slots: &mut sm_slots,
            sm_l1_tx: &mut sm_l1_tx,
            total_latency_ns: &mut total_latency_ns,
        };
        // An active trace-cache session forces the lane path (its
        // buffers are the unit the cache records and replays); without
        // one the engine keeps its original threshold — both paths are
        // byte-identical, so this is purely a routing choice.
        match trace_cache::launch_begin(threads, num_sms, warp_size) {
            LaunchDisposition::Replay(rec) => {
                self.replay_recorded(mem, threads, &mut body, &mut tally, params, workers, rec);
            }
            LaunchDisposition::Record => {
                self.run_lanes(mem, threads, &mut body, &mut tally, params, workers, true);
            }
            LaunchDisposition::None => {
                if workers >= 2 && n_warps >= num_sms {
                    self.run_lanes(mem, threads, &mut body, &mut tally, params, workers, false);
                } else {
                    let t0 = Instant::now();
                    self.run_warps_sequential(mem, threads, &mut body, &mut tally, params);
                    crate::threads::record_sequential(t0.elapsed());
                }
            }
        }

        // Assemble the time bounds.
        let cycle = self.cfg.cycle_ns();
        let max_sm_slots = sm_slots.iter().copied().max().unwrap_or(0);
        let max_sm_tx = sm_l1_tx.iter().copied().max().unwrap_or(0);

        let compute_ns = max_sm_slots as f64 * cycle / self.cfg.issue_width as f64;
        let l1_ns = max_sm_tx as f64 * cycle;
        let memory_ns =
            (mem.service_time_ns() - service_before).max(0.0) / self.cfg.dram_efficiency;
        let concurrency =
            (n_warps as f64).min(self.cfg.max_resident_warps() as f64) * self.cfg.mlp_per_warp;
        let latency_ns = total_latency_ns / concurrency.max(1.0);
        let max_conflicts = self
            .scratch
            .atomic_counts
            .values()
            .copied()
            .max()
            .unwrap_or(0);
        let atomic_ns = max_conflicts as f64 * ATOMIC_THROUGHPUT_NS;

        stats.bounds = TimeBounds {
            compute_ns,
            l1_ns,
            memory_ns,
            latency_ns,
            atomic_ns,
        };
        stats.time_ns = stats.bounds.max_ns() + self.cfg.kernel_launch_ns;

        // Traffic windows.
        let mut l1_window = CacheStats::default();
        for (l1, before) in self.l1s.iter().zip(&l1_before) {
            l1_window.merge(&l1.stats().since(before));
        }
        stats.l1 = l1_window;
        stats.mem = mem.stats().since(&mem_before);

        if self.probe.is_on() {
            self.probe.emit(Event::KernelRetired {
                name: name.to_string(),
                stats: Box::new(stats),
            });
            mem.emit_window(MemSource::Gpu);
        }

        stats
    }

    /// The original single-threaded warp loop: runs thread bodies,
    /// drives the per-SM L1s and the shared memory system warp by warp.
    fn run_warps_sequential<F>(
        &mut self,
        mem: &mut MemorySystem,
        threads: usize,
        body: &mut F,
        tally: &mut LaunchTally<'_>,
        params: LaneParams,
    ) where
        F: FnMut(usize, &mut ThreadCtx),
    {
        let warp_size = self.cfg.warp_size as usize;
        let num_sms = self.cfg.num_sms as usize;
        let n_warps = threads.div_ceil(warp_size);

        // Borrow the scratch buffers apart from `l1s`/`coalescer` so
        // the warp loop reuses them without fighting the borrow checker.
        let RunScratch {
            warp_traces,
            loads,
            stores,
            atomics,
            tx,
            atomic_counts,
        } = &mut self.scratch;
        if warp_traces.len() < warp_size {
            warp_traces.resize_with(warp_size, Vec::new);
        }
        atomic_counts.clear();

        let mut ctx = ThreadCtx::new();

        for w in 0..n_warps {
            let sm = w % num_sms;
            let first = w * warp_size;
            let last = ((w + 1) * warp_size).min(threads);
            let lanes = last - first;
            let mut alu_max = 0u64;
            let mut mem_slot_count = 0usize;
            for (k, tid) in (first..last).enumerate() {
                body(tid, &mut ctx);
                let alu = ctx.drain_trace_into(&mut warp_traces[k]);
                let mems = &warp_traces[k];
                for op in mems.iter() {
                    if op.atomic {
                        tally.stats.atomics += 1;
                        *atomic_counts.entry(op.addr).or_insert(0) += 1;
                    } else if op.write {
                        tally.stats.stores += 1;
                    } else {
                        tally.stats.loads += 1;
                    }
                }
                alu_max = alu_max.max(alu);
                tally.stats.thread_insts += alu + mems.len() as u64;
                mem_slot_count = mem_slot_count.max(mems.len());
            }

            // Simulate each aligned memory slot.
            let mut warp_tx = 0u64;
            for j in 0..mem_slot_count {
                // Gather the j-th op of each lane, grouped by kind.
                loads.clear();
                stores.clear();
                atomics.clear();
                for lane in &warp_traces[..lanes] {
                    if let Some(op) = lane.get(j) {
                        if op.atomic {
                            atomics.push(op.addr);
                        } else if op.write {
                            stores.push(op.addr);
                        } else {
                            loads.push(op.addr);
                        }
                    }
                }

                if !loads.is_empty() {
                    tally.stats.mem_slots += 1;
                    self.coalescer.transactions_into(loads, tx);
                    for &line in tx.iter() {
                        warp_tx += 1;
                        let l1_out = self.l1s[sm].access(line, AccessKind::Read);
                        *tally.total_latency_ns += self.cfg.l1_hit_latency_ns;
                        if !l1_out.hit {
                            let out = mem.access(line, AccessKind::Read);
                            *tally.total_latency_ns += out.latency_ns;
                        }
                    }
                }
                if !stores.is_empty() {
                    tally.stats.mem_slots += 1;
                    // Global stores are write-through, no-allocate on
                    // Maxwell: they bypass the L1 and go to the L2.
                    // Consecutive-line spans (the common coalesced
                    // case) go through the batched run fast path.
                    self.coalescer.transactions_into(stores, tx);
                    warp_tx += tx.len() as u64;
                    let mut i = 0;
                    while i < tx.len() {
                        let start = tx[i];
                        let mut len = 1u64;
                        if params.same_line_size {
                            while i + (len as usize) < tx.len()
                                && tx[i + len as usize] == start + len * params.line_bytes
                            {
                                len += 1;
                            }
                        }
                        if len == 1 {
                            mem.access(start, AccessKind::Write);
                        } else {
                            mem.access_run(start, len, AccessKind::Write);
                        }
                        i += len as usize;
                    }
                }
                if !atomics.is_empty() {
                    tally.stats.mem_slots += 1;
                    // Atomics resolve at the L2.
                    self.coalescer.transactions_into(atomics, tx);
                    for &line in tx.iter() {
                        warp_tx += 1;
                        let out = mem.access(line, AccessKind::Write);
                        *tally.total_latency_ns += self.cfg.atomic_latency_ns + out.latency_ns;
                    }
                }
            }

            tally.stats.transactions += warp_tx;
            tally.sm_l1_tx[sm] += warp_tx;
            let slots = alu_max + mem_slot_count as u64;
            tally.stats.warp_slots += slots;
            tally.sm_slots[sm] += slots;
        }
    }

    /// The lane path: sequential functional pass (phase A), parallel
    /// per-SM timing lanes (phase B), ordered replay (phase C). With
    /// `store_trace`, the filled lane buffers are appended to the
    /// active trace-cache recording between phases B and C.
    #[allow(clippy::too_many_arguments)]
    fn run_lanes<F>(
        &mut self,
        mem: &mut MemorySystem,
        threads: usize,
        body: &mut F,
        tally: &mut LaunchTally<'_>,
        params: LaneParams,
        workers: usize,
        store_trace: bool,
    ) where
        F: FnMut(usize, &mut ThreadCtx),
    {
        let warp_size = self.cfg.warp_size as usize;
        let num_sms = self.cfg.num_sms as usize;
        let n_warps = threads.div_ceil(warp_size);
        let t0 = Instant::now();
        self.record_warp_traces(threads, body);
        let functional = t0.elapsed();
        let t1 = Instant::now();
        self.dispatch_lanes(workers, params);
        self.collect_lanes();
        let lane = t1.elapsed();
        if store_trace {
            trace_cache::record_launch(threads, num_sms, warp_size, &self.lane_bufs[..num_sms]);
        }
        let t2 = Instant::now();
        self.replay_lanes(mem, n_warps, tally);
        crate::threads::record_threaded(functional, lane, t2.elapsed());
    }

    /// The warm trace-cache path: the recorded per-SM streams go to
    /// the timing lanes directly, and the kernel bodies re-run *while
    /// the lanes work* — with recording off, since device-memory side
    /// effects are all the functional pass still has to produce.
    #[allow(clippy::too_many_arguments)]
    fn replay_recorded<F>(
        &mut self,
        mem: &mut MemorySystem,
        threads: usize,
        body: &mut F,
        tally: &mut LaunchTally<'_>,
        params: LaneParams,
        workers: usize,
        rec: trace_cache::LaunchReplay,
    ) where
        F: FnMut(usize, &mut ThreadCtx),
    {
        let num_sms = self.cfg.num_sms as usize;
        let n_warps = threads.div_ceil(self.cfg.warp_size as usize);
        if self.lane_bufs.len() < num_sms {
            self.lane_bufs.resize_with(num_sms, LaneBuf::default);
        }
        for (buf, sm_rec) in self.lane_bufs.iter_mut().zip(rec.sms) {
            buf.begin_launch();
            buf.ops = sm_rec.ops;
            buf.lane_lens = sm_rec.lane_lens;
            buf.warps = sm_rec.warps;
            buf.alu_total = sm_rec.alu_total;
        }
        let t1 = Instant::now();
        self.dispatch_lanes(workers, params);
        let t0 = Instant::now();
        let mut ctx = ThreadCtx::new();
        ctx.set_recording(false);
        for tid in 0..threads {
            body(tid, &mut ctx);
        }
        let functional = t0.elapsed();
        self.collect_lanes();
        let lane = t1.elapsed().saturating_sub(functional);
        let t2 = Instant::now();
        self.replay_lanes(mem, n_warps, tally);
        crate::threads::record_threaded(functional, lane, t2.elapsed());
    }

    /// Phase A of the lane path: the sequential functional pass.
    ///
    /// Runs every thread body in canonical order (lanes share device
    /// memory, so this cannot parallelise), appending each warp's
    /// per-lane traces into its SM's [`LaneBuf`]. Op classification
    /// and slot accounting moved into the parallel lanes (phase B);
    /// this loop keeps only what the bodies alone can produce: the
    /// traces and the per-lane ALU counters.
    fn record_warp_traces<F>(&mut self, threads: usize, body: &mut F)
    where
        F: FnMut(usize, &mut ThreadCtx),
    {
        let warp_size = self.cfg.warp_size as usize;
        let num_sms = self.cfg.num_sms as usize;
        let n_warps = threads.div_ceil(warp_size);

        if self.lane_bufs.len() < num_sms {
            self.lane_bufs.resize_with(num_sms, LaneBuf::default);
        }
        for buf in &mut self.lane_bufs[..num_sms] {
            buf.begin_launch();
        }

        let mut ctx = ThreadCtx::new();
        for w in 0..n_warps {
            let sm = w % num_sms;
            let first = w * warp_size;
            let last = ((w + 1) * warp_size).min(threads);
            let buf = &mut self.lane_bufs[sm];
            let mut alu_max = 0u64;
            let mut max_ops = 0usize;
            for tid in first..last {
                body(tid, &mut ctx);
                let before = buf.ops.len();
                let alu = ctx.drain_trace_append(&mut buf.ops);
                let n_ops = buf.ops.len() - before;
                buf.lane_lens.push(n_ops as u32);
                alu_max = alu_max.max(alu);
                buf.alu_total += alu;
                max_ops = max_ops.max(n_ops);
            }
            buf.warps.push(LaneWarp {
                lanes: (last - first) as u32,
                max_ops: max_ops as u32,
                alu_max,
            });
        }
    }

    /// Phase B dispatch: fan each SM's traces plus its L1 out to the
    /// lane pool. Caches and buffers move by ownership — no shared
    /// state, no locks.
    fn dispatch_lanes(&mut self, workers: usize, params: LaneParams) {
        let num_sms = self.cfg.num_sms as usize;
        if self.pool.as_ref().map(LanePool::workers) != Some(workers) {
            self.pool = Some(LanePool::new(workers));
        }
        let pool = self.pool.as_ref().expect("pool ensured above");
        for sm in 0..num_sms {
            let buf = std::mem::take(&mut self.lane_bufs[sm]);
            let cache = std::mem::replace(&mut self.l1s[sm], placeholder_cache());
            pool.dispatch(LaneTask {
                sm,
                buf,
                cache,
                params,
            });
        }
    }

    /// Phase B collect: re-slot the completed lane tasks.
    fn collect_lanes(&mut self) {
        let num_sms = self.cfg.num_sms as usize;
        let pool = self.pool.as_ref().expect("collect follows dispatch");
        for _ in 0..num_sms {
            let task = pool.collect();
            self.l1s[task.sm] = task.cache;
            self.lane_bufs[task.sm] = task.buf;
        }
    }

    /// Phase C of the threaded path: replay the per-SM streams against
    /// the shared L2/DRAM in canonical warp-index order, reproducing
    /// the sequential engine's exact access sequence and f64 latency
    /// addition order.
    fn replay_lanes(
        &mut self,
        mem: &mut MemorySystem,
        n_warps: usize,
        tally: &mut LaunchTally<'_>,
    ) {
        let num_sms = self.cfg.num_sms as usize;
        let l1_hit = self.cfg.l1_hit_latency_ns;
        let atomic_lat = self.cfg.atomic_latency_ns;
        let mut warp_cursor = vec![0usize; num_sms];
        let mut replay_cursor = vec![0usize; num_sms];
        for w in 0..n_warps {
            let sm = w % num_sms;
            let buf = &self.lane_bufs[sm];
            let count = buf.warp_replay[warp_cursor[sm]] as usize;
            warp_cursor[sm] += 1;
            let start = replay_cursor[sm];
            replay_cursor[sm] = start + count;
            for op in &buf.replay[start..start + count] {
                match *op {
                    ReplayOp::Hits(n) => {
                        for _ in 0..n {
                            *tally.total_latency_ns += l1_hit;
                        }
                    }
                    ReplayOp::Miss(line) => {
                        *tally.total_latency_ns += l1_hit;
                        let out = mem.access(line, AccessKind::Read);
                        *tally.total_latency_ns += out.latency_ns;
                    }
                    ReplayOp::Store { addr, lines } => {
                        mem.apply_run(TxRun {
                            addr,
                            lines: lines as u64,
                            kind: AccessKind::Write,
                        });
                    }
                    ReplayOp::Atomic(line) => {
                        let out = mem.access(line, AccessKind::Write);
                        *tally.total_latency_ns += atomic_lat + out.latency_ns;
                    }
                }
            }
        }
        // Merge the order-insensitive tallies the lanes computed in
        // parallel: plain integer sums (and per-address sums for the
        // atomic conflicts), so the result is deterministic at any
        // worker count and equal to the sequential path's.
        let atomic_counts = &mut self.scratch.atomic_counts;
        for (sm, buf) in self.lane_bufs[..num_sms].iter().enumerate() {
            tally.stats.transactions += buf.transactions;
            tally.sm_l1_tx[sm] += buf.transactions;
            tally.stats.mem_slots += buf.mem_slots;
            tally.stats.loads += buf.loads;
            tally.stats.stores += buf.stores;
            tally.stats.atomics += buf.atomics;
            tally.stats.thread_insts += buf.alu_total + buf.ops_total;
            tally.stats.warp_slots += buf.slots;
            tally.sm_slots[sm] += buf.slots;
            for (&addr, &n) in &buf.atomic_counts {
                *atomic_counts.entry(addr).or_insert(0) += n;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scu_mem::buffer::{DeviceAllocator, DeviceArray};

    fn setup() -> (GpuEngine, MemorySystem, DeviceAllocator) {
        let cfg = GpuConfig::tx1();
        let mem = MemorySystem::new(cfg.memory.clone());
        (GpuEngine::new(cfg), mem, DeviceAllocator::new())
    }

    #[test]
    fn empty_launch_is_free() {
        let (mut eng, mut mem, _) = setup();
        let s = eng.run(&mut mem, "noop", 0, |_, _| {});
        assert_eq!(s.time_ns, 0.0);
        assert_eq!(s.threads, 0);
    }

    #[test]
    fn functional_result_is_exact() {
        let (mut eng, mut mem, mut alloc) = setup();
        let a = DeviceArray::from_vec(&mut alloc, (0u32..1000).collect());
        let mut b: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 1000);
        eng.run(&mut mem, "copy", 1000, |tid, ctx| {
            let v = ctx.load(&a, tid);
            ctx.store(&mut b, tid, v + 1);
        });
        for i in 0..1000 {
            assert_eq!(b.get(i), i as u32 + 1);
        }
    }

    #[test]
    fn coalesced_access_issues_one_tx_per_line() {
        let (mut eng, mut mem, mut alloc) = setup();
        let a: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 1024);
        let s = eng.run(&mut mem, "seq", 1024, |tid, ctx| {
            let _ = ctx.load(&a, tid);
        });
        // 1024 u32 = 4096 B = 32 lines; 32 warps x 1 tx each.
        assert_eq!(s.transactions, 32);
        assert_eq!(s.mem_slots, 32);
        assert!((s.transactions_per_mem_slot() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scattered_access_diverges() {
        let (mut eng, mut mem, mut alloc) = setup();
        let a: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 1 << 16);
        let s = eng.run(&mut mem, "scatter", 1024, |tid, ctx| {
            let idx = (tid * 7919) % (1 << 16);
            let _ = ctx.load(&a, idx);
        });
        assert!(
            s.transactions_per_mem_slot() > 16.0,
            "divergence {} too low",
            s.transactions_per_mem_slot()
        );
    }

    #[test]
    fn scattered_kernel_slower_than_sequential() {
        let (mut eng, mut mem, mut alloc) = setup();
        let a: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 1 << 20);
        let n = 1 << 15;
        let seq = eng.run(&mut mem, "seq", n, |tid, ctx| {
            let _ = ctx.load(&a, tid);
        });
        let mut eng2 = GpuEngine::new(GpuConfig::tx1());
        let mut mem2 = MemorySystem::new(GpuConfig::tx1().memory);
        let scat = eng2.run(&mut mem2, "scat", n, |tid, ctx| {
            let _ = ctx.load(&a, (tid * 7919) % (1 << 20));
        });
        assert!(
            scat.time_ns > 2.0 * seq.time_ns,
            "scattered {} vs sequential {}",
            scat.time_ns,
            seq.time_ns
        );
    }

    #[test]
    fn atomics_to_same_address_serialize() {
        let (mut eng, mut mem, mut alloc) = setup();
        let mut acc: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 1);
        let n = 4096;
        let s = eng.run(&mut mem, "atomic", n, |_, ctx| {
            ctx.atomic_rmw(&mut acc, 0, |v| v + 1);
        });
        assert_eq!(acc.get(0), n as u32);
        assert!(s.bounds.atomic_ns >= n as f64 * ATOMIC_THROUGHPUT_NS * 0.99);
        assert_eq!(s.bounds.binding(), "atomic");
    }

    #[test]
    fn divergent_loop_counts_serialize_in_slots() {
        let (mut eng, mut mem, mut alloc) = setup();
        let a: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 64 * 32);
        // One thread in each warp does 64 loads, others do 1.
        let s = eng.run(&mut mem, "unbalanced", 64, |tid, ctx| {
            let n = if tid % 32 == 0 { 64 } else { 1 };
            for k in 0..n {
                let _ = ctx.load(&a, (tid * 64 + k) % (64 * 32));
            }
        });
        // 2 warps; each warp has 64 memory slots (max over lanes).
        assert_eq!(s.warps, 2);
        assert!(s.mem_slots >= 128);
    }

    #[test]
    fn thread_insts_counts_all_lanes() {
        let (mut eng, mut mem, mut alloc) = setup();
        let a: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 32);
        let s = eng.run(&mut mem, "insts", 32, |tid, ctx| {
            ctx.alu(3);
            let _ = ctx.load(&a, tid);
        });
        assert_eq!(s.thread_insts, 32 * 4);
    }

    #[test]
    fn more_sms_speed_up_compute_bound_kernels() {
        let big = GpuConfig::gtx980();
        let small = GpuConfig::tx1();
        let mut mem_b = MemorySystem::new(big.memory.clone());
        let mut mem_s = MemorySystem::new(small.memory.clone());
        let mut eng_b = GpuEngine::new(big);
        let mut eng_s = GpuEngine::new(small);
        let work = |_tid: usize, ctx: &mut ThreadCtx| ctx.alu(100);
        let sb = eng_b.run(&mut mem_b, "alu", 1 << 16, work);
        let ss = eng_s.run(&mut mem_s, "alu", 1 << 16, work);
        assert!(sb.time_ns < ss.time_ns / 4.0);
    }

    #[test]
    fn traced_launch_emits_lifecycle_and_window() {
        use scu_trace::RecordingSink;
        use std::cell::RefCell;
        use std::rc::Rc;

        let (mut eng, mut mem, mut alloc) = setup();
        let a: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 64);
        let sink = Rc::new(RefCell::new(RecordingSink::new("t", false)));
        eng.set_probe(Probe::new(sink.clone()));
        mem.set_probe(Probe::new(sink.clone()));
        let direct = eng.run(&mut mem, "probe-me", 64, |tid, ctx| {
            let _ = ctx.load(&a, tid);
        });
        eng.set_probe(Probe::off());
        mem.set_probe(Probe::off());
        let tl = Rc::try_unwrap(sink).unwrap().into_inner().finish();
        assert!(matches!(
            &tl.events[0].event,
            Event::KernelLaunched { name, threads: 64 } if name == "probe-me"
        ));
        let Event::KernelRetired { stats, .. } = &tl.events[1].event else {
            panic!("expected KernelRetired, got {:?}", tl.events[1].event);
        };
        assert_eq!(**stats, direct, "event payload matches returned stats");
        let Event::MemWindow { source, stats } = &tl.events[2].event else {
            panic!("expected MemWindow, got {:?}", tl.events[2].event);
        };
        assert_eq!(*source, MemSource::Gpu);
        assert_eq!(stats.l2.accesses, direct.mem.l2.accesses);
    }

    /// Runs the same mixed kernel (coalesced + scattered loads, L1
    /// reuse, stores, conflicting atomics) twice per launch count on
    /// fresh engine/memory pairs — once pinned sequential, once pinned
    /// to `threads` lanes — and requires every statistic, including
    /// the f64 time bounds and the memory-system windows, to be
    /// byte-identical.
    fn assert_threaded_matches_sequential(cfg: GpuConfig, threads: usize) {
        let run_all = |override_n: Option<usize>| -> (Vec<KernelStats>, String) {
            let mut alloc = DeviceAllocator::new();
            let n = 4096usize;
            let a = DeviceArray::from_vec(&mut alloc, (0u32..n as u32).collect());
            let mut b: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, n);
            let mut acc: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 8);
            let mut mem = MemorySystem::new(cfg.memory.clone());
            let mut eng = GpuEngine::new(cfg.clone());
            eng.set_thread_override(override_n);
            let mut all = Vec::new();
            // Two launches: the second sees warm L1s and warm DRAM row
            // buffers, so it checks cross-launch state equality too.
            for round in 0..2 {
                let s = eng.run(&mut mem, "mixed", n, |tid, ctx| {
                    let v = ctx.load(&a, tid);
                    let w = ctx.load(&a, (tid * 7919 + round) % n);
                    ctx.alu(3);
                    ctx.store(&mut b, tid, v.wrapping_add(w));
                    if tid % 3 == 0 {
                        ctx.atomic_rmw(&mut acc, tid % 8, |x| x.wrapping_add(v));
                    }
                });
                all.push(s);
            }
            let fingerprint = format!(
                "{:?} | mem={:?} | service={:.6}",
                all,
                mem.stats(),
                mem.service_time_ns()
            );
            (all, fingerprint)
        };
        let (seq, seq_fp) = run_all(Some(1));
        let (par, par_fp) = run_all(Some(threads));
        assert_eq!(seq, par, "KernelStats diverged at {threads} lanes");
        assert_eq!(seq_fp, par_fp, "memory-system state diverged");
    }

    #[test]
    fn threaded_path_matches_sequential_tx1() {
        assert_threaded_matches_sequential(GpuConfig::tx1(), 2);
    }

    #[test]
    fn threaded_path_matches_sequential_gtx980() {
        assert_threaded_matches_sequential(GpuConfig::gtx980(), 4);
        assert_threaded_matches_sequential(GpuConfig::gtx980(), 16);
    }

    #[test]
    fn oversized_thread_count_clamps_to_sm_count() {
        // 64 lanes on a 2-SM part must behave exactly like 2.
        assert_threaded_matches_sequential(GpuConfig::tx1(), 64);
    }

    #[test]
    fn small_launch_stays_on_sequential_path() {
        // One warp on a 16-SM part: threaded pin must not change
        // anything (the engine falls back to the sequential loop).
        let cfg = GpuConfig::gtx980();
        let mut alloc = DeviceAllocator::new();
        let a: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 32);
        let run = |pin: Option<usize>| {
            let mut mem = MemorySystem::new(cfg.memory.clone());
            let mut eng = GpuEngine::new(cfg.clone());
            eng.set_thread_override(pin);
            eng.run(&mut mem, "tiny", 32, |tid, ctx| {
                let _ = ctx.load(&a, tid);
            })
        };
        assert_eq!(run(Some(1)), run(Some(8)));
    }

    /// Runs the standard mixed kernel twice (cross-launch warm state),
    /// optionally inside a trace-cache cell scope, and fingerprints
    /// every statistic plus the memory-system end state.
    fn run_mixed_cell(
        cfg: &GpuConfig,
        pin: usize,
        key: Option<&str>,
    ) -> (String, Option<trace_cache::CellTraceOutcome>) {
        let scope = key.map(trace_cache::begin_cell);
        let mut alloc = DeviceAllocator::new();
        let n = 4096usize;
        let a = DeviceArray::from_vec(&mut alloc, (0u32..n as u32).collect());
        let mut b: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, n);
        let mut acc: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 8);
        let mut mem = MemorySystem::new(cfg.memory.clone());
        let mut eng = GpuEngine::new(cfg.clone());
        eng.set_thread_override(Some(pin));
        let mut all = Vec::new();
        for round in 0..2 {
            let s = eng.run(&mut mem, "mixed", n, |tid, ctx| {
                let v = ctx.load(&a, tid);
                let w = ctx.load(&a, (tid * 7919 + round) % n);
                ctx.alu(3);
                ctx.store(&mut b, tid, v.wrapping_add(w));
                if tid % 3 == 0 {
                    ctx.atomic_rmw(&mut acc, tid % 8, |x| x.wrapping_add(v));
                }
            });
            all.push(s);
        }
        let fingerprint = format!(
            "{:?} | mem={:?} | service={:.6} | b={:?} | acc={:?}",
            all,
            mem.stats(),
            mem.service_time_ns(),
            b.as_slice(),
            acc.as_slice(),
        );
        drop(scope);
        (
            fingerprint,
            key.and_then(|_| trace_cache::last_cell_outcome()),
        )
    }

    #[test]
    fn trace_cache_warm_replay_is_byte_identical() {
        let _serial = trace_cache::test_mutex()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        trace_cache::set_enabled(true);
        trace_cache::install(Some(trace_cache::shared_test_store()));
        let cfg = GpuConfig::gtx980();
        let key = "engine-warm-identical";

        let (baseline, _) = run_mixed_cell(&cfg, 1, None);
        let (cold, cold_out) = run_mixed_cell(&cfg, 4, Some(key));
        let out = cold_out.expect("session ran");
        assert!(out.stored && !out.hit && !out.poisoned, "{out:?}");
        assert_eq!(out.launches, 2);
        assert_eq!(baseline, cold, "cold recording diverged from plain run");

        for pin in [1usize, 4] {
            let (warm, warm_out) = run_mixed_cell(&cfg, pin, Some(key));
            let out = warm_out.expect("session ran");
            assert!(out.hit && !out.poisoned, "pin {pin}: {out:?}");
            assert!(out.bytes_replayed > 0);
            assert_eq!(baseline, warm, "warm replay diverged at pin {pin}");
        }
    }

    #[test]
    fn trace_cache_cold_recording_at_one_worker_matches_plain() {
        let _serial = trace_cache::test_mutex()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        trace_cache::set_enabled(true);
        trace_cache::install(Some(trace_cache::shared_test_store()));
        let cfg = GpuConfig::tx1();
        let (baseline, _) = run_mixed_cell(&cfg, 1, None);
        let (cold, out) = run_mixed_cell(&cfg, 1, Some("engine-cold-seq"));
        assert!(out.expect("session ran").stored);
        assert_eq!(baseline, cold);
    }

    #[test]
    fn corrupt_stored_trace_falls_back_to_cold_and_heals() {
        let _serial = trace_cache::test_mutex()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        trace_cache::set_enabled(true);
        let store = trace_cache::shared_test_store();
        trace_cache::install(Some(store.clone()));
        let cfg = GpuConfig::gtx980();
        let key = "engine-corrupt";

        let (baseline, _) = run_mixed_cell(&cfg, 1, None);
        let (_, out) = run_mixed_cell(&cfg, 4, Some(key));
        assert!(out.expect("session ran").stored);

        // Flip a byte in the middle of the stored blob.
        {
            let mut map = store.map.lock().unwrap();
            let blob = map.get_mut(key).expect("blob stored");
            let mid = blob.len() / 2;
            blob[mid] ^= 0xff;
        }

        let (fell_back, out) = run_mixed_cell(&cfg, 4, Some(key));
        let out = out.expect("session ran");
        assert!(!out.hit, "corrupt blob must not replay: {out:?}");
        assert!(out.stored, "cold fallback re-stores a fresh blob");
        assert_eq!(baseline, fell_back, "fallback produced a wrong result");

        // The re-stored blob serves warm again.
        let (healed, out) = run_mixed_cell(&cfg, 4, Some(key));
        assert!(out.expect("session ran").hit);
        assert_eq!(baseline, healed);
    }

    #[test]
    fn trace_shape_divergence_poisons_and_stays_correct() {
        let _serial = trace_cache::test_mutex()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        trace_cache::set_enabled(true);
        trace_cache::install(Some(trace_cache::shared_test_store()));
        let cfg = GpuConfig::gtx980();
        let key = "engine-diverge";
        let n = 4096usize;

        let run_n = |threads: usize, with_key: bool| {
            let scope = with_key.then(|| trace_cache::begin_cell(key));
            let mut alloc = DeviceAllocator::new();
            let a: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, n);
            let mut mem = MemorySystem::new(cfg.memory.clone());
            let mut eng = GpuEngine::new(cfg.clone());
            eng.set_thread_override(Some(4));
            let s = eng.run(&mut mem, "probe", threads, |tid, ctx| {
                let _ = ctx.load(&a, tid % n);
            });
            drop(scope);
            format!("{s:?}")
        };

        let _ = run_n(n, true); // records a trace for `n` threads
        let baseline = run_n(n / 2, false);
        // Same key, different launch shape: must poison and fall back.
        let diverged = run_n(n / 2, true);
        let out = trace_cache::last_cell_outcome().expect("session ran");
        assert!(out.poisoned, "{out:?}");
        assert!(!out.stored, "poisoned sessions must not overwrite the blob");
        assert_eq!(baseline, diverged);
    }

    #[test]
    fn l1_hits_absorb_repeated_loads() {
        let (mut eng, mut mem, mut alloc) = setup();
        let a: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 32);
        let s = eng.run(&mut mem, "reuse", 32, |tid, ctx| {
            for _ in 0..8 {
                let _ = ctx.load(&a, tid);
            }
        });
        // 8 slots x 1 line; only the first misses.
        assert_eq!(s.l1.misses, 1);
        assert_eq!(s.l1.hits, 7);
        assert_eq!(s.mem.l2.accesses, 1);
    }
}

//! Per-thread kernel execution context.
//!
//! A kernel body is a Rust closure `FnMut(tid, &mut ThreadCtx)`. The
//! closure performs its real computation on
//! [`DeviceArray`] contents; every device
//! memory operation goes through the [`ThreadCtx`] so the engine
//! observes the exact addresses the computation touched. This mirrors
//! how a CUDA thread both computes and generates a memory trace.

use scu_mem::buffer::DeviceArray;
use scu_mem::line::Addr;

/// One recorded per-thread operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadOp {
    /// `n` arithmetic/control instructions with no memory traffic.
    Alu(u32),
    /// A global load of `bytes` bytes at `addr`.
    Load { addr: Addr, bytes: u8 },
    /// A global store of `bytes` bytes at `addr`.
    Store { addr: Addr, bytes: u8 },
    /// An atomic read-modify-write at `addr`.
    Atomic { addr: Addr, bytes: u8 },
}

/// Execution context handed to each simulated thread.
///
/// All `load`/`store`/`atomic_*` methods both perform the data movement
/// host-side and record the address for the timing model. Use
/// [`ThreadCtx::alu`] to account for arithmetic between memory
/// operations; graph kernels are memory-bound, so a coarse count is
/// sufficient.
#[derive(Debug, Default)]
pub struct ThreadCtx {
    ops: Vec<ThreadOp>,
}

impl ThreadCtx {
    /// Creates an empty context (the engine does this per thread).
    pub fn new() -> Self {
        ThreadCtx { ops: Vec::new() }
    }

    /// Records `n` ALU instructions.
    #[inline]
    pub fn alu(&mut self, n: u32) {
        if n > 0 {
            self.ops.push(ThreadOp::Alu(n));
        }
    }

    /// Loads element `i` of `arr`, recording the access.
    #[inline]
    pub fn load<T: Copy>(&mut self, arr: &DeviceArray<T>, i: usize) -> T {
        self.ops.push(ThreadOp::Load {
            addr: arr.addr(i),
            bytes: std::mem::size_of::<T>() as u8,
        });
        arr.get(i)
    }

    /// Stores `v` into element `i` of `arr`, recording the access.
    #[inline]
    pub fn store<T: Copy>(&mut self, arr: &mut DeviceArray<T>, i: usize, v: T) {
        self.ops.push(ThreadOp::Store {
            addr: arr.addr(i),
            bytes: std::mem::size_of::<T>() as u8,
        });
        arr.set(i, v);
    }

    /// Atomically applies `f` to element `i` of `arr`, returning the
    /// previous value.
    ///
    /// The simulation executes threads sequentially, so the composite
    /// read-modify-write is exact; the timing model charges atomic
    /// serialisation separately.
    #[inline]
    pub fn atomic_rmw<T: Copy>(
        &mut self,
        arr: &mut DeviceArray<T>,
        i: usize,
        f: impl FnOnce(T) -> T,
    ) -> T {
        self.ops.push(ThreadOp::Atomic {
            addr: arr.addr(i),
            bytes: std::mem::size_of::<T>() as u8,
        });
        let old = arr.get(i);
        arr.set(i, f(old));
        old
    }

    /// `atomicAdd` convenience over [`ThreadCtx::atomic_rmw`].
    #[inline]
    pub fn atomic_add(&mut self, arr: &mut DeviceArray<f64>, i: usize, v: f64) -> f64 {
        self.atomic_rmw(arr, i, |old| old + v)
    }

    /// `atomicMin` convenience over [`ThreadCtx::atomic_rmw`].
    #[inline]
    pub fn atomic_min_u32(&mut self, arr: &mut DeviceArray<u32>, i: usize, v: u32) -> u32 {
        self.atomic_rmw(arr, i, |old| old.min(v))
    }

    /// Number of operations recorded so far.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Drains the recorded trace (the engine calls this after the
    /// thread body returns).
    pub fn take_ops(&mut self) -> Vec<ThreadOp> {
        std::mem::take(&mut self.ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scu_mem::buffer::DeviceAllocator;

    #[test]
    fn load_records_and_returns() {
        let mut alloc = DeviceAllocator::new();
        let arr = DeviceArray::from_vec(&mut alloc, vec![7u32, 8]);
        let mut ctx = ThreadCtx::new();
        assert_eq!(ctx.load(&arr, 1), 8);
        let ops = ctx.take_ops();
        assert_eq!(ops.len(), 1);
        assert_eq!(
            ops[0],
            ThreadOp::Load {
                addr: arr.addr(1),
                bytes: 4
            }
        );
    }

    #[test]
    fn store_records_and_mutates() {
        let mut alloc = DeviceAllocator::new();
        let mut arr = DeviceArray::from_vec(&mut alloc, vec![0u64; 4]);
        let mut ctx = ThreadCtx::new();
        ctx.store(&mut arr, 2, 99);
        assert_eq!(arr.get(2), 99);
        assert_eq!(
            ctx.take_ops()[0],
            ThreadOp::Store {
                addr: arr.addr(2),
                bytes: 8
            }
        );
    }

    #[test]
    fn atomic_rmw_returns_old_value() {
        let mut alloc = DeviceAllocator::new();
        let mut arr = DeviceArray::from_vec(&mut alloc, vec![10u32]);
        let mut ctx = ThreadCtx::new();
        let old = ctx.atomic_min_u32(&mut arr, 0, 3);
        assert_eq!(old, 10);
        assert_eq!(arr.get(0), 3);
        let old = ctx.atomic_min_u32(&mut arr, 0, 5);
        assert_eq!(old, 3);
        assert_eq!(arr.get(0), 3);
    }

    #[test]
    fn atomic_add_accumulates() {
        let mut alloc = DeviceAllocator::new();
        let mut arr = DeviceArray::from_vec(&mut alloc, vec![1.5f64]);
        let mut ctx = ThreadCtx::new();
        ctx.atomic_add(&mut arr, 0, 2.5);
        assert!((arr.get(0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_alu_not_recorded() {
        let mut ctx = ThreadCtx::new();
        ctx.alu(0);
        ctx.alu(3);
        assert_eq!(ctx.op_count(), 1);
    }

    #[test]
    fn take_ops_drains() {
        let mut ctx = ThreadCtx::new();
        ctx.alu(1);
        assert_eq!(ctx.take_ops().len(), 1);
        assert_eq!(ctx.op_count(), 0);
    }
}

//! Per-thread kernel execution context.
//!
//! A kernel body is a Rust closure `FnMut(tid, &mut ThreadCtx)`. The
//! closure performs its real computation on
//! [`DeviceArray`] contents; every device
//! memory operation goes through the [`ThreadCtx`] so the engine
//! observes the exact addresses the computation touched. This mirrors
//! how a CUDA thread both computes and generates a memory trace.
//!
//! The trace is split by what the engine needs: memory operations keep
//! their program order (SIMT slot alignment depends on it), while ALU
//! work — which only ever feeds a per-thread sum — is a plain counter.
//! Recording a thread therefore costs one `Vec` push per *memory* op
//! and a single add per `alu()` call, which matters: trace recording
//! and decoding is the hottest path in the whole simulator.

use scu_mem::buffer::DeviceArray;
use scu_mem::line::Addr;

/// One recorded per-thread memory operation, in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// Byte address of the accessed element.
    pub addr: Addr,
    /// Store or atomic (writes a line) vs load.
    pub write: bool,
    /// Atomic read-modify-write (serialises at the L2).
    pub atomic: bool,
}

/// Execution context handed to each simulated thread.
///
/// All `load`/`store`/`atomic_*` methods both perform the data movement
/// host-side and record the address for the timing model. Use
/// [`ThreadCtx::alu`] to account for arithmetic between memory
/// operations; graph kernels are memory-bound, so a coarse count is
/// sufficient.
///
/// With recording switched off ([`ThreadCtx::set_recording`]) the data
/// movement still happens — device memory must stay exact because the
/// host algorithm reads it between launches — but no trace is kept.
/// The engine uses this when replaying a cached functional trace: the
/// bodies re-run for their side effects while the recorded `MemOp`
/// streams stand in for the trace.
#[derive(Debug)]
pub struct ThreadCtx {
    alu: u64,
    mems: Vec<MemOp>,
    record: bool,
}

impl Default for ThreadCtx {
    fn default() -> Self {
        ThreadCtx {
            alu: 0,
            mems: Vec::new(),
            record: true,
        }
    }
}

impl ThreadCtx {
    /// Creates an empty, recording context (the engine does this per
    /// launch).
    pub fn new() -> Self {
        ThreadCtx::default()
    }

    /// Switches trace recording on or off. Data movement is unaffected.
    pub fn set_recording(&mut self, on: bool) {
        self.record = on;
    }

    /// Records `n` ALU instructions.
    #[inline]
    pub fn alu(&mut self, n: u32) {
        if self.record {
            self.alu += n as u64;
        }
    }

    /// Loads element `i` of `arr`, recording the access.
    #[inline]
    pub fn load<T: Copy>(&mut self, arr: &DeviceArray<T>, i: usize) -> T {
        if self.record {
            self.mems.push(MemOp {
                addr: arr.addr(i),
                write: false,
                atomic: false,
            });
        }
        arr.get(i)
    }

    /// Stores `v` into element `i` of `arr`, recording the access.
    #[inline]
    pub fn store<T: Copy>(&mut self, arr: &mut DeviceArray<T>, i: usize, v: T) {
        if self.record {
            self.mems.push(MemOp {
                addr: arr.addr(i),
                write: true,
                atomic: false,
            });
        }
        arr.set(i, v);
    }

    /// Atomically applies `f` to element `i` of `arr`, returning the
    /// previous value.
    ///
    /// The simulation executes threads sequentially, so the composite
    /// read-modify-write is exact; the timing model charges atomic
    /// serialisation separately.
    #[inline]
    pub fn atomic_rmw<T: Copy>(
        &mut self,
        arr: &mut DeviceArray<T>,
        i: usize,
        f: impl FnOnce(T) -> T,
    ) -> T {
        if self.record {
            self.mems.push(MemOp {
                addr: arr.addr(i),
                write: true,
                atomic: true,
            });
        }
        let old = arr.get(i);
        arr.set(i, f(old));
        old
    }

    /// `atomicAdd` convenience over [`ThreadCtx::atomic_rmw`].
    #[inline]
    pub fn atomic_add(&mut self, arr: &mut DeviceArray<f64>, i: usize, v: f64) -> f64 {
        self.atomic_rmw(arr, i, |old| old + v)
    }

    /// `atomicMin` convenience over [`ThreadCtx::atomic_rmw`].
    #[inline]
    pub fn atomic_min_u32(&mut self, arr: &mut DeviceArray<u32>, i: usize, v: u32) -> u32 {
        self.atomic_rmw(arr, i, |old| old.min(v))
    }

    /// Number of memory operations recorded so far.
    pub fn op_count(&self) -> usize {
        self.mems.len()
    }

    /// Accumulated ALU instruction count.
    pub fn alu_count(&self) -> u64 {
        self.alu
    }

    /// Drains the recorded trace (the engine calls this after the
    /// thread body returns): the ordered memory ops move into `mems`
    /// (cleared first, allocation reused) and the ALU total is
    /// returned and reset.
    pub fn drain_trace_into(&mut self, mems: &mut Vec<MemOp>) -> u64 {
        mems.clear();
        mems.append(&mut self.mems);
        std::mem::take(&mut self.alu)
    }

    /// Like [`ThreadCtx::drain_trace_into`] but *appends* to `mems`
    /// instead of clearing it first — the per-SM timing lanes record
    /// every lane of every warp into one flat buffer, so the drain
    /// must not discard earlier lanes' ops.
    pub fn drain_trace_append(&mut self, mems: &mut Vec<MemOp>) -> u64 {
        mems.append(&mut self.mems);
        std::mem::take(&mut self.alu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scu_mem::buffer::DeviceAllocator;

    #[test]
    fn load_records_and_returns() {
        let mut alloc = DeviceAllocator::new();
        let arr = DeviceArray::from_vec(&mut alloc, vec![7u32, 8]);
        let mut ctx = ThreadCtx::new();
        assert_eq!(ctx.load(&arr, 1), 8);
        let mut ops = Vec::new();
        let alu = ctx.drain_trace_into(&mut ops);
        assert_eq!(alu, 0);
        assert_eq!(
            ops,
            vec![MemOp {
                addr: arr.addr(1),
                write: false,
                atomic: false
            }]
        );
    }

    #[test]
    fn store_records_and_mutates() {
        let mut alloc = DeviceAllocator::new();
        let mut arr = DeviceArray::from_vec(&mut alloc, vec![0u64; 4]);
        let mut ctx = ThreadCtx::new();
        ctx.store(&mut arr, 2, 99);
        assert_eq!(arr.get(2), 99);
        let mut ops = Vec::new();
        ctx.drain_trace_into(&mut ops);
        assert_eq!(
            ops[0],
            MemOp {
                addr: arr.addr(2),
                write: true,
                atomic: false
            }
        );
    }

    #[test]
    fn atomic_rmw_returns_old_value() {
        let mut alloc = DeviceAllocator::new();
        let mut arr = DeviceArray::from_vec(&mut alloc, vec![10u32]);
        let mut ctx = ThreadCtx::new();
        let old = ctx.atomic_min_u32(&mut arr, 0, 3);
        assert_eq!(old, 10);
        assert_eq!(arr.get(0), 3);
        let old = ctx.atomic_min_u32(&mut arr, 0, 5);
        assert_eq!(old, 3);
        assert_eq!(arr.get(0), 3);
        assert!(ctx.mems.iter().all(|m| m.write && m.atomic));
    }

    #[test]
    fn atomic_add_accumulates() {
        let mut alloc = DeviceAllocator::new();
        let mut arr = DeviceArray::from_vec(&mut alloc, vec![1.5f64]);
        let mut ctx = ThreadCtx::new();
        ctx.atomic_add(&mut arr, 0, 2.5);
        assert!((arr.get(0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn alu_accumulates_as_counter() {
        let mut ctx = ThreadCtx::new();
        ctx.alu(0);
        ctx.alu(3);
        ctx.alu(2);
        assert_eq!(ctx.alu_count(), 5);
        assert_eq!(ctx.op_count(), 0);
    }

    #[test]
    fn drain_append_preserves_earlier_ops() {
        let mut alloc = DeviceAllocator::new();
        let arr = DeviceArray::from_vec(&mut alloc, vec![1u32, 2]);
        let mut ctx = ThreadCtx::new();
        let mut ops = Vec::new();
        ctx.alu(2);
        ctx.load(&arr, 0);
        assert_eq!(ctx.drain_trace_append(&mut ops), 2);
        ctx.load(&arr, 1);
        assert_eq!(ctx.drain_trace_append(&mut ops), 0);
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].addr, arr.addr(0));
        assert_eq!(ops[1].addr, arr.addr(1));
        assert_eq!(ctx.op_count(), 0);
    }

    #[test]
    fn recording_off_moves_data_but_keeps_no_trace() {
        let mut alloc = DeviceAllocator::new();
        let a = DeviceArray::from_vec(&mut alloc, vec![5u32, 6]);
        let mut b = DeviceArray::from_vec(&mut alloc, vec![0u32; 2]);
        let mut ctx = ThreadCtx::new();
        ctx.set_recording(false);
        ctx.alu(7);
        let v = ctx.load(&a, 1);
        ctx.store(&mut b, 0, v);
        let old = ctx.atomic_min_u32(&mut b, 0, 2);
        assert_eq!(v, 6);
        assert_eq!(old, 6);
        assert_eq!(b.get(0), 2, "data movement still exact");
        assert_eq!(ctx.op_count(), 0);
        assert_eq!(ctx.alu_count(), 0);
    }

    #[test]
    fn drain_resets_both_halves() {
        let mut alloc = DeviceAllocator::new();
        let arr = DeviceArray::from_vec(&mut alloc, vec![1u32]);
        let mut ctx = ThreadCtx::new();
        ctx.alu(1);
        ctx.load(&arr, 0);
        let mut ops = Vec::new();
        assert_eq!(ctx.drain_trace_into(&mut ops), 1);
        assert_eq!(ops.len(), 1);
        assert_eq!(ctx.op_count(), 0);
        assert_eq!(ctx.alu_count(), 0);
    }
}

//! Content-addressed functional-trace cache.
//!
//! Most sweep cells differ only in *timing* knobs (cache geometry,
//! DRAM model, SCU parameters): the kernel bodies execute the same
//! instructions and touch the same addresses, so the per-warp `MemOp`
//! traces the functional pass records are identical across large
//! slices of the experiment matrix. This module caches those traces
//! keyed by a cell's *semantic key* — everything that determines the
//! traces (algorithm, dataset, launch geometry, functional-model
//! version) and nothing that doesn't.
//!
//! The cache is strictly an accelerator, never an oracle:
//!
//! - Kernel bodies **always re-execute**, warm or cold — device memory
//!   drives host control flow between launches (frontier sizes, loop
//!   exits), so functional outputs are never taken from the cache. A
//!   warm hit only skips trace *recording*: the engine feeds the
//!   stored per-SM streams straight into its timing lanes, overlapped
//!   with the (non-recording) body re-execution.
//! - Every blob embeds its semantic key and a trailing FNV-1a digest;
//!   any mismatch — corrupt bytes, wrong key, launch-shape divergence —
//!   poisons the session and falls back to cold execution for the rest
//!   of the cell. Byte-identical results are the invariant; the cache
//!   can only ever be slow, not wrong.
//!
//! The store behind the cache is injected via [`TraceStore`] (the
//! harness installs an adapter over its `scu-store` backend), keeping
//! this crate free of persistence dependencies. State is
//! process-global for the store/enable knobs and thread-local for the
//! per-cell session, matching the harness model of one cell per worker
//! thread.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::kernel::MemOp;
use crate::lanes::{LaneBuf, LaneWarp};

/// Blob header magic; the trailing two bytes version the format.
const MAGIC: &[u8; 8] = b"SCUTRC01";

/// Default cap on one cell's trace blob (`SCU_TRACE_CACHE_MAX_BYTES`
/// overrides): large-scale cells can record hundreds of megabytes of
/// ops, which would bloat the store for a cache that exists to save
/// time, so oversized cells simply skip the cache.
const DEFAULT_MAX_BYTES: u64 = 64 << 20;

/// What a [`TraceStore`] lookup found.
#[derive(Debug)]
pub enum TraceLoad {
    /// The stored blob, as last written.
    Data(Vec<u8>),
    /// Nothing stored under this key.
    Missing,
    /// The backend detected corruption (callers fall back to cold
    /// recording, which re-stores a fresh blob).
    Corrupt,
}

/// The persistence seam: the harness installs an adapter over its
/// result store; tests install in-memory maps. Implementations must
/// return bytes exactly as stored — integrity beyond transport is this
/// module's own digest check.
pub trait TraceStore: Send + Sync {
    /// Looks up the blob stored under `key`.
    fn load(&self, key: &str) -> TraceLoad;
    /// Stores `bytes` under `key`; `false` means the write failed and
    /// the blob was not persisted (the run continues uncached).
    fn store(&self, key: &str, bytes: &[u8]) -> bool;
}

static ENABLED: AtomicBool = AtomicBool::new(true);

fn store_slot() -> &'static Mutex<Option<Arc<dyn TraceStore>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<dyn TraceStore>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Installs (or, with `None`, removes) the process-wide trace store.
/// Sessions already begun keep the store they captured.
pub fn install(store: Option<Arc<dyn TraceStore>>) {
    *store_slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = store;
}

/// Enables or disables the cache process-wide (`--no-trace-cache`).
/// Disabled means [`begin_cell`] is inert: no loads, no stores.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the cache is currently enabled.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static STORES: AtomicU64 = AtomicU64::new(0);
static POISONED: AtomicU64 = AtomicU64::new(0);
static OVERSIZE_SKIPPED: AtomicU64 = AtomicU64::new(0);
static BYTES_REPLAYED: AtomicU64 = AtomicU64::new(0);
static BYTES_STORED: AtomicU64 = AtomicU64::new(0);

/// Process-wide trace-cache counters (for `/metrics` and summaries).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCacheStats {
    /// Cells that began with a verified stored trace.
    pub hits: u64,
    /// Cells that found no stored trace and recorded cold.
    pub misses: u64,
    /// Trace blobs successfully persisted.
    pub stores: u64,
    /// Integrity or shape failures: corrupt blobs, key or geometry
    /// mismatches, launch-count divergence. Each fell back to cold
    /// execution.
    pub poisoned: u64,
    /// Cells whose trace exceeded the size cap and was not stored.
    pub oversize_skipped: u64,
    /// Trace bytes fed to the timing lanes from the cache.
    pub bytes_replayed: u64,
    /// Trace bytes persisted.
    pub bytes_stored: u64,
}

/// Snapshot of the process-wide counters.
pub fn stats() -> TraceCacheStats {
    TraceCacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        stores: STORES.load(Ordering::Relaxed),
        poisoned: POISONED.load(Ordering::Relaxed),
        oversize_skipped: OVERSIZE_SKIPPED.load(Ordering::Relaxed),
        bytes_replayed: BYTES_REPLAYED.load(Ordering::Relaxed),
        bytes_stored: BYTES_STORED.load(Ordering::Relaxed),
    }
}

fn max_bytes() -> u64 {
    static CAP: OnceLock<u64> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("SCU_TRACE_CACHE_MAX_BYTES")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_MAX_BYTES)
    })
}

enum SessionMode {
    /// Verified blob; `cursor` walks launch frames, stopping at the
    /// digest trailer.
    Replay { blob: Vec<u8>, cursor: usize },
    /// Recording cold; `buf` accumulates header + launch frames.
    Record { buf: Vec<u8>, oversize: bool },
    /// Poisoned mid-cell: plain execution, nothing stored.
    Off,
}

struct CellSession {
    store: Arc<dyn TraceStore>,
    key: String,
    mode: SessionMode,
    /// The session began with a verified stored trace (kept out of
    /// `mode` so a later poisoning doesn't erase it from the outcome).
    hit: bool,
    /// A stored trace existed but failed verification at load time, so
    /// the session fell back to cold recording.
    poisoned_load: bool,
    launches: u64,
    bytes_replayed: u64,
}

thread_local! {
    static SESSION: RefCell<Option<CellSession>> = const { RefCell::new(None) };
    static LAST: RefCell<Option<CellTraceOutcome>> = const { RefCell::new(None) };
}

/// How the most recent cell on this thread interacted with the cache
/// (for `run_one --profile`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CellTraceOutcome {
    /// The semantic key the cell ran under.
    pub key: String,
    /// A verified stored trace was replayed.
    pub hit: bool,
    /// A freshly recorded trace was persisted.
    pub stored: bool,
    /// The session was poisoned (corruption or divergence) and fell
    /// back to cold execution.
    pub poisoned: bool,
    /// The recorded trace exceeded the size cap and was skipped.
    pub oversize: bool,
    /// Kernel launches the session saw.
    pub launches: u64,
    /// Bytes replayed from the cache.
    pub bytes_replayed: u64,
    /// Bytes persisted to the cache.
    pub bytes_stored: u64,
}

/// The outcome of the most recent [`CellScope`] dropped on this thread.
pub fn last_cell_outcome() -> Option<CellTraceOutcome> {
    LAST.with(|l| l.borrow().clone())
}

/// RAII guard scoping one cell's trace session to the current thread.
/// Created by [`begin_cell`]; dropping it finalises the session
/// (persisting a cold recording, checking a replay ran to completion).
#[must_use = "the session ends when the scope drops"]
pub struct CellScope {
    active: bool,
}

/// Opens a trace session for a cell with semantic key `key`.
///
/// Inert (plain execution, engine behaviour unchanged) when the cache
/// is disabled, no store is installed, or a session is already active
/// on this thread.
pub fn begin_cell(key: &str) -> CellScope {
    if !is_enabled() {
        return CellScope { active: false };
    }
    let store = match store_slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
    {
        Some(s) => s,
        None => return CellScope { active: false },
    };
    if SESSION.with(|s| s.borrow().is_some()) {
        return CellScope { active: false };
    }
    let mut poisoned_load = false;
    let mode = match store.load(key) {
        TraceLoad::Data(blob) => match validate_blob(&blob, key) {
            Some(cursor) => {
                HITS.fetch_add(1, Ordering::Relaxed);
                SessionMode::Replay { blob, cursor }
            }
            None => {
                POISONED.fetch_add(1, Ordering::Relaxed);
                poisoned_load = true;
                record_mode(key)
            }
        },
        TraceLoad::Missing => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            record_mode(key)
        }
        TraceLoad::Corrupt => {
            POISONED.fetch_add(1, Ordering::Relaxed);
            poisoned_load = true;
            record_mode(key)
        }
    };
    let hit = matches!(mode, SessionMode::Replay { .. });
    SESSION.with(|s| {
        *s.borrow_mut() = Some(CellSession {
            store,
            key: key.to_string(),
            mode,
            hit,
            poisoned_load,
            launches: 0,
            bytes_replayed: 0,
        });
    });
    CellScope { active: true }
}

fn record_mode(key: &str) -> SessionMode {
    let mut buf = Vec::with_capacity(256);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
    buf.extend_from_slice(key.as_bytes());
    SessionMode::Record {
        buf,
        oversize: false,
    }
}

impl Drop for CellScope {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let Some(sess) = SESSION.with(|s| s.borrow_mut().take()) else {
            return;
        };
        let mut outcome = CellTraceOutcome {
            key: sess.key.clone(),
            hit: sess.hit,
            poisoned: sess.poisoned_load,
            launches: sess.launches,
            bytes_replayed: sess.bytes_replayed,
            ..CellTraceOutcome::default()
        };
        match sess.mode {
            SessionMode::Replay { blob, cursor } => {
                BYTES_REPLAYED.fetch_add(sess.bytes_replayed, Ordering::Relaxed);
                // Fewer launches than recorded means the cell diverged
                // from the trace's semantics — flag it so the matrix
                // check notices, even though every replayed launch was
                // individually validated.
                if cursor != blob.len().saturating_sub(8) {
                    POISONED.fetch_add(1, Ordering::Relaxed);
                    outcome.poisoned = true;
                }
            }
            SessionMode::Record { mut buf, oversize } => {
                if oversize {
                    OVERSIZE_SKIPPED.fetch_add(1, Ordering::Relaxed);
                    outcome.oversize = true;
                } else if !std::thread::panicking() && sess.launches > 0 {
                    let digest = fnv64(&buf);
                    buf.extend_from_slice(&digest.to_le_bytes());
                    if sess.store.store(&sess.key, &buf) {
                        STORES.fetch_add(1, Ordering::Relaxed);
                        BYTES_STORED.fetch_add(buf.len() as u64, Ordering::Relaxed);
                        outcome.stored = true;
                        outcome.bytes_stored = buf.len() as u64;
                    }
                }
            }
            SessionMode::Off => outcome.poisoned = true,
        }
        LAST.with(|l| *l.borrow_mut() = Some(outcome));
    }
}

/// One SM's share of a recorded launch, ready to drop into a
/// [`LaneBuf`].
pub(crate) struct SmReplay {
    pub alu_total: u64,
    pub warps: Vec<LaneWarp>,
    pub lane_lens: Vec<u32>,
    pub ops: Vec<MemOp>,
}

/// A decoded launch frame: one [`SmReplay`] per SM.
pub(crate) struct LaunchReplay {
    pub sms: Vec<SmReplay>,
}

/// What the engine should do for the launch it is about to run.
pub(crate) enum LaunchDisposition {
    /// No session (or poisoned/oversized): the engine's normal paths.
    None,
    /// Cold session: route through the timing lanes and call
    /// [`record_launch`] once the per-SM buffers are filled.
    Record,
    /// Warm session: feed these streams to the lanes; re-run bodies
    /// without recording.
    Replay(LaunchReplay),
}

/// Consulted by `GpuEngine::run` at the top of every non-empty launch.
/// Validates the next recorded frame against the launch shape; any
/// mismatch poisons the session (cold execution, nothing stored) —
/// never a wrong result.
pub(crate) fn launch_begin(threads: usize, num_sms: usize, warp_size: usize) -> LaunchDisposition {
    SESSION.with(|slot| {
        let mut slot = slot.borrow_mut();
        let Some(sess) = slot.as_mut() else {
            return LaunchDisposition::None;
        };
        match &mut sess.mode {
            SessionMode::Replay { blob, cursor } => {
                match decode_launch(blob, *cursor, threads, num_sms, warp_size) {
                    Some((rec, next)) => {
                        sess.bytes_replayed += (next - *cursor) as u64;
                        *cursor = next;
                        sess.launches += 1;
                        LaunchDisposition::Replay(rec)
                    }
                    None => {
                        POISONED.fetch_add(1, Ordering::Relaxed);
                        sess.mode = SessionMode::Off;
                        LaunchDisposition::None
                    }
                }
            }
            SessionMode::Record { oversize: true, .. } => LaunchDisposition::None,
            SessionMode::Record { .. } => {
                sess.launches += 1;
                LaunchDisposition::Record
            }
            SessionMode::Off => LaunchDisposition::None,
        }
    })
}

/// Appends one launch's per-SM streams to the session's recording.
/// Called by the engine after the timing lanes have filled `bufs`
/// (phase B), whose contents are exactly what a warm replay needs.
pub(crate) fn record_launch(threads: usize, num_sms: usize, warp_size: usize, bufs: &[LaneBuf]) {
    SESSION.with(|slot| {
        let mut slot = slot.borrow_mut();
        let Some(sess) = slot.as_mut() else {
            return;
        };
        if let SessionMode::Record { buf, oversize } = &mut sess.mode {
            if *oversize {
                return;
            }
            encode_launch(buf, threads, num_sms, warp_size, bufs);
            if buf.len() as u64 > max_bytes() {
                *oversize = true;
                buf.clear();
                buf.shrink_to_fit();
            }
        }
    });
}

fn encode_launch(
    out: &mut Vec<u8>,
    threads: usize,
    num_sms: usize,
    warp_size: usize,
    bufs: &[LaneBuf],
) {
    out.extend_from_slice(&(threads as u64).to_le_bytes());
    out.extend_from_slice(&(num_sms as u32).to_le_bytes());
    out.extend_from_slice(&(warp_size as u32).to_le_bytes());
    for buf in bufs {
        out.extend_from_slice(&buf.alu_total.to_le_bytes());
        out.extend_from_slice(&(buf.warps.len() as u32).to_le_bytes());
        for w in &buf.warps {
            out.extend_from_slice(&w.lanes.to_le_bytes());
            out.extend_from_slice(&w.max_ops.to_le_bytes());
            out.extend_from_slice(&w.alu_max.to_le_bytes());
        }
        out.extend_from_slice(&(buf.lane_lens.len() as u32).to_le_bytes());
        for &len in &buf.lane_lens {
            out.extend_from_slice(&len.to_le_bytes());
        }
        out.extend_from_slice(&(buf.ops.len() as u64).to_le_bytes());
        for op in &buf.ops {
            out.extend_from_slice(&op.addr.to_le_bytes());
            out.push(u8::from(op.write) | (u8::from(op.atomic) << 1));
        }
    }
}

/// Header + digest check; returns the first frame's offset.
fn validate_blob(blob: &[u8], key: &str) -> Option<usize> {
    let len = blob.len();
    if len < MAGIC.len() + 4 + key.len() + 8 {
        return None;
    }
    if &blob[..MAGIC.len()] != MAGIC {
        return None;
    }
    let mut c = Cursor {
        blob,
        pos: MAGIC.len(),
        end: len - 8,
    };
    let key_len = c.u32()? as usize;
    if key_len != key.len() || c.bytes(key_len)? != key.as_bytes() {
        return None;
    }
    let digest = u64::from_le_bytes(blob[len - 8..].try_into().ok()?);
    if fnv64(&blob[..len - 8]) != digest {
        return None;
    }
    Some(c.pos)
}

struct Cursor<'a> {
    blob: &'a [u8],
    pos: usize,
    /// Exclusive decode bound (the digest trailer is off limits).
    end: usize,
}

impl<'a> Cursor<'a> {
    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.end.checked_sub(self.pos)? < n {
            return None;
        }
        let s = &self.blob[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.bytes(4)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.bytes(8)?.try_into().ok()?))
    }
}

/// Decodes the launch frame at `cursor`, validating it against the
/// launch shape the engine is about to run. Returns the decoded
/// streams and the next frame's offset.
fn decode_launch(
    blob: &[u8],
    cursor: usize,
    threads: usize,
    num_sms: usize,
    warp_size: usize,
) -> Option<(LaunchReplay, usize)> {
    let mut c = Cursor {
        blob,
        pos: cursor,
        end: blob.len().checked_sub(8)?,
    };
    if c.u64()? != threads as u64 || c.u32()? != num_sms as u32 || c.u32()? != warp_size as u32 {
        return None;
    }
    let mut sms = Vec::with_capacity(num_sms);
    for _ in 0..num_sms {
        let alu_total = c.u64()?;
        let n_warps = c.u32()? as usize;
        let mut warps = Vec::with_capacity(n_warps);
        let mut lanes_total = 0usize;
        for _ in 0..n_warps {
            let lanes = c.u32()?;
            let max_ops = c.u32()?;
            let alu_max = c.u64()?;
            lanes_total += lanes as usize;
            warps.push(LaneWarp {
                lanes,
                max_ops,
                alu_max,
            });
        }
        let n_lens = c.u32()? as usize;
        if n_lens != lanes_total {
            return None;
        }
        let mut lane_lens = Vec::with_capacity(n_lens);
        let mut ops_total = 0u64;
        for _ in 0..n_lens {
            let len = c.u32()?;
            ops_total += len as u64;
            lane_lens.push(len);
        }
        let n_ops = c.u64()?;
        if n_ops != ops_total {
            return None;
        }
        let mut ops = Vec::with_capacity(n_ops as usize);
        for _ in 0..n_ops {
            let addr = c.u64()?;
            let flags = c.bytes(1)?[0];
            if flags > 0b11 {
                return None;
            }
            ops.push(MemOp {
                addr,
                write: flags & 0b01 != 0 || flags & 0b10 != 0,
                atomic: flags & 0b10 != 0,
            });
        }
        sms.push(SmReplay {
            alu_total,
            warps,
            lane_lens,
            ops,
        });
    }
    Some((LaunchReplay { sms }, c.pos))
}

/// FNV-1a over a byte stream — the workspace's standard digest.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// In-memory store shared by this crate's unit tests. Tests run
/// concurrently in one process against the process-global install
/// slot, so they all install this one store (idempotent) and use
/// unique keys; [`test_mutex`] serialises the few tests that must
/// observe global counters or toggle the enable flag.
#[cfg(test)]
#[derive(Default)]
pub(crate) struct MapStore {
    pub map: Mutex<std::collections::HashMap<String, Vec<u8>>>,
}

#[cfg(test)]
impl TraceStore for MapStore {
    fn load(&self, key: &str) -> TraceLoad {
        match self.map.lock().unwrap().get(key) {
            Some(b) => TraceLoad::Data(b.clone()),
            None => TraceLoad::Missing,
        }
    }
    fn store(&self, key: &str, bytes: &[u8]) -> bool {
        self.map
            .lock()
            .unwrap()
            .insert(key.to_string(), bytes.to_vec());
        true
    }
}

/// The one store every test installs (same `Arc`, so concurrent
/// installs are harmless).
#[cfg(test)]
pub(crate) fn shared_test_store() -> Arc<MapStore> {
    static STORE: OnceLock<Arc<MapStore>> = OnceLock::new();
    Arc::clone(STORE.get_or_init(|| Arc::new(MapStore::default())))
}

/// Serialises tests that toggle [`set_enabled`] or assert on the
/// global counters.
#[cfg(test)]
pub(crate) fn test_mutex() -> &'static Mutex<()> {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_buf() -> LaneBuf {
        LaneBuf {
            ops: vec![
                MemOp {
                    addr: 128,
                    write: false,
                    atomic: false,
                },
                MemOp {
                    addr: 256,
                    write: true,
                    atomic: false,
                },
                MemOp {
                    addr: 0,
                    write: true,
                    atomic: true,
                },
            ],
            lane_lens: vec![2, 1],
            warps: vec![LaneWarp {
                lanes: 2,
                max_ops: 2,
                alu_max: 5,
            }],
            alu_total: 8,
            ..Default::default()
        }
    }

    #[test]
    fn launch_frames_roundtrip_exactly() {
        let bufs = [sample_buf()];
        let mut blob = Vec::new();
        encode_launch(&mut blob, 2, 1, 32, &bufs);
        blob.extend_from_slice(&[0u8; 8]); // digest placeholder for the cursor bound
        let (rec, next) = decode_launch(&blob, 0, 2, 1, 32).expect("frame decodes");
        assert_eq!(next, blob.len() - 8);
        assert_eq!(rec.sms.len(), 1);
        let sm = &rec.sms[0];
        assert_eq!(sm.alu_total, 8);
        assert_eq!(sm.ops, bufs[0].ops);
        assert_eq!(sm.lane_lens, bufs[0].lane_lens);
        assert_eq!(sm.warps.len(), 1);
        assert_eq!(sm.warps[0].alu_max, 5);
    }

    #[test]
    fn decode_rejects_shape_mismatch_and_truncation() {
        let bufs = [sample_buf()];
        let mut blob = Vec::new();
        encode_launch(&mut blob, 2, 1, 32, &bufs);
        blob.extend_from_slice(&[0u8; 8]);
        assert!(decode_launch(&blob, 0, 3, 1, 32).is_none(), "thread count");
        assert!(decode_launch(&blob, 0, 2, 2, 32).is_none(), "SM count");
        assert!(decode_launch(&blob, 0, 2, 1, 16).is_none(), "warp size");
        let truncated = &blob[..blob.len() - 12];
        assert!(decode_launch(truncated, 0, 2, 1, 32).is_none());
    }

    #[test]
    fn blob_validation_checks_magic_key_and_digest() {
        let SessionMode::Record { mut buf, .. } = record_mode("k1") else {
            panic!("record_mode returns Record");
        };
        encode_launch(&mut buf, 2, 1, 32, &[sample_buf()]);
        let digest = fnv64(&buf);
        buf.extend_from_slice(&digest.to_le_bytes());
        assert!(validate_blob(&buf, "k1").is_some());
        assert!(validate_blob(&buf, "k2").is_none(), "key mismatch");
        let mut corrupt = buf.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0xff;
        assert!(validate_blob(&corrupt, "k1").is_none(), "digest mismatch");
        let mut bad_magic = buf;
        bad_magic[0] ^= 0xff;
        assert!(validate_blob(&bad_magic, "k1").is_none());
    }

    #[test]
    fn begin_cell_is_inert_when_disabled() {
        let _serial = test_mutex()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        install(Some(shared_test_store()));
        set_enabled(false);
        let scope = begin_cell("inert");
        set_enabled(true);
        assert!(!scope.active);
        assert!(matches!(launch_begin(32, 2, 32), LaunchDisposition::None));
    }

    #[test]
    fn record_and_replay_roundtrip_through_a_store() {
        let _serial = test_mutex()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_enabled(true);
        let store = shared_test_store();
        install(Some(store.clone()));
        let key = "unit-roundtrip";

        {
            let _scope = begin_cell(key);
            assert!(matches!(launch_begin(2, 1, 32), LaunchDisposition::Record));
            record_launch(2, 1, 32, &[sample_buf()]);
        }
        let outcome = last_cell_outcome().expect("scope just dropped");
        assert!(outcome.stored && !outcome.hit, "{outcome:?}");
        assert!(store.map.lock().unwrap().contains_key(key));

        {
            let _scope = begin_cell(key);
            let LaunchDisposition::Replay(rec) = launch_begin(2, 1, 32) else {
                panic!("expected warm replay");
            };
            assert_eq!(rec.sms[0].ops, sample_buf().ops);
        }
        let outcome = last_cell_outcome().expect("scope just dropped");
        assert!(outcome.hit && !outcome.poisoned, "{outcome:?}");
        assert!(outcome.bytes_replayed > 0);
    }

    #[test]
    fn replay_poisons_on_launch_shape_divergence() {
        let _serial = test_mutex()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_enabled(true);
        install(Some(shared_test_store()));
        let key = "unit-diverge";
        {
            let _scope = begin_cell(key);
            assert!(matches!(launch_begin(2, 1, 32), LaunchDisposition::Record));
            record_launch(2, 1, 32, &[sample_buf()]);
        }
        {
            let _scope = begin_cell(key);
            // Different thread count than recorded: must refuse.
            assert!(matches!(launch_begin(3, 1, 32), LaunchDisposition::None));
            // And the whole session is now cold.
            assert!(matches!(launch_begin(2, 1, 32), LaunchDisposition::None));
        }
        let outcome = last_cell_outcome().expect("scope just dropped");
        assert!(outcome.hit && outcome.poisoned, "{outcome:?}");
    }
}

//! GPU system parameters (paper Tables 3 and 4).

use scu_mem::cache::CacheConfig;
use scu_mem::line::LineSize;
use scu_mem::system::MemorySystemConfig;

/// Parameters of a simulated GPU.
///
/// Two presets mirror the paper's platforms:
///
/// * [`GpuConfig::gtx980`] — high-performance: 16 Maxwell SMs at
///   1.27 GHz, 2048 threads/SM, 32 KB L1, 2 MB L2, GDDR5 (Table 3);
/// * [`GpuConfig::tx1`] — low-power: 2 Maxwell SMs at 1 GHz,
///   256 threads/SM, 32 KB L1, 256 KB L2, LPDDR4 (Table 4).
#[derive(Debug, Clone)]
pub struct GpuConfig {
    /// Human-readable system name.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// Threads per warp (32 on all modelled hardware).
    pub warp_size: u32,
    /// Maximum resident threads per SM.
    pub threads_per_sm: u32,
    /// Instructions each SM can issue per cycle (warp schedulers).
    pub issue_width: u32,
    /// Per-SM L1 data cache geometry.
    pub l1: CacheConfig,
    /// L1 hit latency, ns.
    pub l1_hit_latency_ns: f64,
    /// Additional latency of one atomic RMW at the L2, ns.
    pub atomic_latency_ns: f64,
    /// Average outstanding memory requests per resident warp
    /// (memory-level parallelism used for latency hiding).
    pub mlp_per_warp: f64,
    /// Fraction of peak DRAM bandwidth SM-generated traffic sustains.
    /// Graph kernels interleave many read/write streams from
    /// thousands of threads, thrashing row buffers and forcing bus
    /// turnarounds; measured utilisation on graph workloads (paper
    /// Figure 13, GPGPU-Sim literature) is far below peak.
    pub dram_efficiency: f64,
    /// Host-side launch latency charged per kernel, ns.
    pub kernel_launch_ns: f64,
    /// Shared L2 + DRAM parameters.
    pub memory: MemorySystemConfig,
}

impl GpuConfig {
    /// High-performance NVIDIA GTX 980 system (paper Table 3).
    pub fn gtx980() -> Self {
        GpuConfig {
            name: "GTX980",
            num_sms: 16,
            freq_ghz: 1.27,
            warp_size: 32,
            threads_per_sm: 2048,
            issue_width: 4,
            l1: CacheConfig::new(32 * 1024, LineSize::L128, 4).expect("static geometry is valid"),
            l1_hit_latency_ns: 9.0,
            atomic_latency_ns: 24.0,
            mlp_per_warp: 2.0,
            dram_efficiency: 0.50,
            kernel_launch_ns: 3_000.0,
            memory: MemorySystemConfig::gtx980(),
        }
    }

    /// Low-power NVIDIA Tegra X1 system (paper Table 4).
    pub fn tx1() -> Self {
        GpuConfig {
            name: "TX1",
            num_sms: 2,
            freq_ghz: 1.0,
            warp_size: 32,
            threads_per_sm: 256,
            issue_width: 2,
            l1: CacheConfig::new(32 * 1024, LineSize::L128, 4).expect("static geometry is valid"),
            l1_hit_latency_ns: 12.0,
            atomic_latency_ns: 30.0,
            mlp_per_warp: 2.0,
            dram_efficiency: 0.55,
            kernel_launch_ns: 4_000.0,
            memory: MemorySystemConfig::tx1(),
        }
    }

    /// Warps resident per SM at full occupancy.
    pub fn warps_per_sm(&self) -> u32 {
        self.threads_per_sm / self.warp_size
    }

    /// Maximum concurrently resident warps across the whole GPU.
    pub fn max_resident_warps(&self) -> u32 {
        self.warps_per_sm() * self.num_sms
    }

    /// Core cycle time in nanoseconds.
    pub fn cycle_ns(&self) -> f64 {
        1.0 / self.freq_ghz
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_sms == 0 {
            return Err("num_sms must be positive".into());
        }
        if self.warp_size == 0 || !self.threads_per_sm.is_multiple_of(self.warp_size) {
            return Err("threads_per_sm must be a positive multiple of warp_size".into());
        }
        if self.issue_width == 0 {
            return Err("issue_width must be positive".into());
        }
        if self.freq_ghz <= 0.0 {
            return Err("frequency must be positive".into());
        }
        if self.mlp_per_warp <= 0.0 {
            return Err("mlp_per_warp must be positive".into());
        }
        if !(0.0 < self.dram_efficiency && self.dram_efficiency <= 1.0) {
            return Err("dram_efficiency must be in (0, 1]".into());
        }
        if self.kernel_launch_ns < 0.0 {
            return Err("kernel_launch_ns must be non-negative".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        GpuConfig::gtx980().validate().unwrap();
        GpuConfig::tx1().validate().unwrap();
    }

    #[test]
    fn gtx980_matches_table3() {
        let c = GpuConfig::gtx980();
        assert_eq!(c.num_sms, 16);
        assert_eq!(c.threads_per_sm, 2048);
        assert_eq!(c.warps_per_sm(), 64);
        assert_eq!(c.max_resident_warps(), 1024);
        assert!((c.freq_ghz - 1.27).abs() < 1e-12);
        assert_eq!(c.memory.l2.size_bytes, 2 * 1024 * 1024);
    }

    #[test]
    fn tx1_matches_table4() {
        let c = GpuConfig::tx1();
        assert_eq!(c.num_sms, 2);
        assert_eq!(c.threads_per_sm, 256);
        assert_eq!(c.warps_per_sm(), 8);
        assert_eq!(c.memory.l2.size_bytes, 256 * 1024);
        assert!((c.cycle_ns() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = GpuConfig::tx1();
        c.num_sms = 0;
        assert!(c.validate().is_err());
        let mut c = GpuConfig::tx1();
        c.threads_per_sm = 100; // not multiple of 32
        assert!(c.validate().is_err());
        let mut c = GpuConfig::tx1();
        c.issue_width = 0;
        assert!(c.validate().is_err());
    }
}

//! The `SimThreads` knob and the engine's phase-time profile.
//!
//! `SimThreads` is a **process-global execution knob**, deliberately
//! not part of any cell configuration: the engine's hard contract is
//! that every simulated metric is byte-identical at any thread count,
//! so the knob must never participate in content-addressed cache keys
//! (a `Cell` that embedded it would hash differently per machine for
//! identical results). Precedence: an explicit [`SimThreads::set`]
//! (the `--sim-threads` flag) wins over the `SCU_SIM_THREADS`
//! environment variable, which wins over the default of 1 — the
//! sequential engine path.
//!
//! The phase profile is the host-side wall-clock companion: the
//! engine attributes real elapsed time to its functional / lane /
//! replay phases (or to the single sequential pass) so `run_one
//! --profile` can show where a cell's simulation time goes and how
//! the parallel lanes change it. Like the knob, it is observability
//! only — nothing simulated reads it.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Unset sentinel: the first read resolves `SCU_SIM_THREADS`.
static SIM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Per-SM timing-lane thread count for the GPU engine.
pub struct SimThreads;

impl SimThreads {
    /// The current thread count (at least 1). The first call without
    /// a prior [`SimThreads::set`] resolves the `SCU_SIM_THREADS`
    /// environment variable, defaulting to 1.
    pub fn get() -> usize {
        match SIM_THREADS.load(Ordering::Relaxed) {
            0 => {
                let n = Self::from_env();
                SIM_THREADS.store(n, Ordering::Relaxed);
                n
            }
            n => n,
        }
    }

    /// Overrides the thread count for the rest of the process
    /// (clamped to at least 1). Engines pick the change up on their
    /// next launch.
    pub fn set(n: usize) {
        SIM_THREADS.store(n.max(1), Ordering::Relaxed);
    }

    /// `SCU_SIM_THREADS`, when set to a positive integer; 1 otherwise.
    fn from_env() -> usize {
        std::env::var("SCU_SIM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
    }
}

/// Host cores available to this process (1 when undetectable).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Whether a requested lane count exceeds the host's real parallelism
/// — i.e. a threaded measurement taken now would be a time-sliced
/// placeholder, not a speedup. Benchmarks tag such records
/// `degraded: true` so they can never silently become a committed
/// baseline (see `bench_gate`).
pub fn parallelism_degraded(requested: usize) -> bool {
    requested > 1 && available_parallelism() < requested
}

static FUNCTIONAL_NS: AtomicU64 = AtomicU64::new(0);
static LANE_NS: AtomicU64 = AtomicU64::new(0);
static REPLAY_NS: AtomicU64 = AtomicU64::new(0);
static SEQUENTIAL_NS: AtomicU64 = AtomicU64::new(0);

/// Accumulated host wall-clock per engine phase, ns, since the last
/// [`reset_phase_profile`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Phase A: the sequential functional pass (thread bodies + trace
    /// recording). Only grows on the threaded engine path.
    pub functional_ns: u64,
    /// Phase B: the parallel per-SM timing lanes, measured as the
    /// dispatch-to-collect window on the launching thread.
    pub lane_ns: u64,
    /// Phase C: the sequential ordered L2/DRAM replay.
    pub replay_ns: u64,
    /// The single-pass sequential engine (`sim_threads` 1, or
    /// launches too small to fan out).
    pub sequential_ns: u64,
}

impl PhaseProfile {
    /// Total accumulated engine time, ns.
    pub fn total_ns(&self) -> u64 {
        self.functional_ns + self.lane_ns + self.replay_ns + self.sequential_ns
    }
}

/// Snapshot of the process-wide engine phase times.
pub fn phase_profile() -> PhaseProfile {
    PhaseProfile {
        functional_ns: FUNCTIONAL_NS.load(Ordering::Relaxed),
        lane_ns: LANE_NS.load(Ordering::Relaxed),
        replay_ns: REPLAY_NS.load(Ordering::Relaxed),
        sequential_ns: SEQUENTIAL_NS.load(Ordering::Relaxed),
    }
}

/// Zeroes the phase-time counters (start of a profiled run).
pub fn reset_phase_profile() {
    FUNCTIONAL_NS.store(0, Ordering::Relaxed);
    LANE_NS.store(0, Ordering::Relaxed);
    REPLAY_NS.store(0, Ordering::Relaxed);
    SEQUENTIAL_NS.store(0, Ordering::Relaxed);
}

fn ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Charges one threaded launch's phase times (engine internal).
pub(crate) fn record_threaded(functional: Duration, lane: Duration, replay: Duration) {
    FUNCTIONAL_NS.fetch_add(ns(functional), Ordering::Relaxed);
    LANE_NS.fetch_add(ns(lane), Ordering::Relaxed);
    REPLAY_NS.fetch_add(ns(replay), Ordering::Relaxed);
}

/// Charges one sequential launch's time (engine internal).
pub(crate) fn record_sequential(elapsed: Duration) {
    SEQUENTIAL_NS.fetch_add(ns(elapsed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_overrides_and_clamps() {
        SimThreads::set(3);
        assert_eq!(SimThreads::get(), 3);
        SimThreads::set(0);
        assert_eq!(SimThreads::get(), 1, "0 clamps to the sequential path");
        SimThreads::set(1);
    }

    #[test]
    fn profile_accumulates_and_resets() {
        reset_phase_profile();
        record_threaded(
            Duration::from_nanos(5),
            Duration::from_nanos(7),
            Duration::from_nanos(11),
        );
        record_sequential(Duration::from_nanos(13));
        let p = phase_profile();
        // Other tests' launches may add on top concurrently; the
        // counters must hold at least this test's contribution.
        assert!(p.functional_ns >= 5);
        assert!(p.lane_ns >= 7);
        assert!(p.replay_ns >= 11);
        assert!(p.sequential_ns >= 13);
        assert!(p.total_ns() >= 36);
    }
}

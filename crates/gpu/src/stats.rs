//! Kernel-launch statistics and the time-bounds breakdown.

use scu_mem::stats::{CacheStats, MemoryStats};
use serde::{Deserialize, Serialize};

/// The individual lower bounds whose maximum is the kernel time.
///
/// Each field answers "how long would this kernel take if only this
/// resource constrained it?" — the roofline model takes the max.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeBounds {
    /// Instruction issue throughput across SMs, ns.
    pub compute_ns: f64,
    /// L1 transaction throughput (1 line/cycle/SM), ns.
    pub l1_ns: f64,
    /// Shared L2 bandwidth + DRAM service time, ns.
    pub memory_ns: f64,
    /// Total memory latency divided by warp-level parallelism, ns.
    pub latency_ns: f64,
    /// Same-address atomic serialisation, ns.
    pub atomic_ns: f64,
}

impl TimeBounds {
    /// The binding constraint — the kernel-time estimate.
    pub fn max_ns(&self) -> f64 {
        self.compute_ns
            .max(self.l1_ns)
            .max(self.memory_ns)
            .max(self.latency_ns)
            .max(self.atomic_ns)
    }

    /// Name of the binding constraint (for reports).
    pub fn binding(&self) -> &'static str {
        let m = self.max_ns();
        if m == self.compute_ns {
            "compute"
        } else if m == self.l1_ns {
            "l1"
        } else if m == self.memory_ns {
            "memory"
        } else if m == self.latency_ns {
            "latency"
        } else {
            "atomic"
        }
    }

    /// Component-wise sum, for accumulating per-launch bounds into an
    /// application profile.
    pub fn merge(&mut self, other: &TimeBounds) {
        self.compute_ns += other.compute_ns;
        self.l1_ns += other.l1_ns;
        self.memory_ns += other.memory_ns;
        self.latency_ns += other.latency_ns;
        self.atomic_ns += other.atomic_ns;
    }
}

/// Statistics of one kernel launch (or, after
/// [`KernelStats::merge`], of a sequence of launches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Number of launches accumulated (1 for a single launch).
    pub launches: u64,
    /// Threads launched.
    pub threads: u64,
    /// Warps launched.
    pub warps: u64,
    /// Dynamic per-thread instructions (ALU + memory + atomic). This is
    /// the metric behind the paper's "GPU instructions reduced by >70%".
    pub thread_insts: u64,
    /// Warp-level issue slots (divergence-inclusive).
    pub warp_slots: u64,
    /// Warp-level memory instructions.
    pub mem_slots: u64,
    /// Coalesced line transactions issued by all warps.
    pub transactions: u64,
    /// Per-thread loads.
    pub loads: u64,
    /// Per-thread stores.
    pub stores: u64,
    /// Per-thread atomics.
    pub atomics: u64,
    /// L1 counters for this window (all SMs summed).
    pub l1: CacheStats,
    /// L2 + DRAM counters for this window.
    pub mem: MemoryStats,
    /// The time-bound breakdown.
    pub bounds: TimeBounds,
    /// Estimated execution time, ns (max of bounds per launch, summed
    /// across merged launches).
    pub time_ns: f64,
}

impl KernelStats {
    /// Average line transactions per warp memory instruction — the
    /// memory-divergence metric (1.0 = perfectly coalesced, up to 32).
    pub fn transactions_per_mem_slot(&self) -> f64 {
        if self.mem_slots == 0 {
            0.0
        } else {
            self.transactions as f64 / self.mem_slots as f64
        }
    }

    /// Accumulates another launch's statistics into this one.
    ///
    /// `time_ns` adds (launches are sequential); counters sum.
    pub fn merge(&mut self, other: &KernelStats) {
        self.launches += other.launches;
        self.threads += other.threads;
        self.warps += other.warps;
        self.thread_insts += other.thread_insts;
        self.warp_slots += other.warp_slots;
        self.mem_slots += other.mem_slots;
        self.transactions += other.transactions;
        self.loads += other.loads;
        self.stores += other.stores;
        self.atomics += other.atomics;
        self.l1.merge(&other.l1);
        self.mem.merge(&other.mem);
        self.bounds.merge(&other.bounds);
        self.time_ns += other.time_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_picks_binding_constraint() {
        let b = TimeBounds {
            compute_ns: 1.0,
            l1_ns: 2.0,
            memory_ns: 5.0,
            latency_ns: 4.0,
            atomic_ns: 0.0,
        };
        assert_eq!(b.max_ns(), 5.0);
        assert_eq!(b.binding(), "memory");
    }

    #[test]
    fn merge_sums_bounds() {
        let mut a = TimeBounds {
            compute_ns: 1.0,
            ..Default::default()
        };
        a.merge(&TimeBounds {
            compute_ns: 2.0,
            atomic_ns: 3.0,
            ..Default::default()
        });
        assert_eq!(a.compute_ns, 3.0);
        assert_eq!(a.atomic_ns, 3.0);
    }

    #[test]
    fn transactions_per_mem_slot_handles_zero() {
        assert_eq!(KernelStats::default().transactions_per_mem_slot(), 0.0);
        let s = KernelStats {
            mem_slots: 4,
            transactions: 10,
            ..Default::default()
        };
        assert!((s.transactions_per_mem_slot() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn kernel_stats_merge_accumulates() {
        let mut a = KernelStats {
            launches: 1,
            threads: 32,
            time_ns: 10.0,
            ..Default::default()
        };
        let b = KernelStats {
            launches: 1,
            threads: 64,
            time_ns: 5.0,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.launches, 2);
        assert_eq!(a.threads, 96);
        assert_eq!(a.time_ns, 15.0);
    }
}

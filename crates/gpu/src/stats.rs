//! Kernel-launch statistics and the time-bounds breakdown.
//!
//! The structs live in `scu-trace` so [`scu_trace::Event`] can carry
//! them; this module re-exports them from their historical home, so
//! `scu_gpu::stats::KernelStats` and friends keep resolving.

pub use scu_trace::{KernelStats, TimeBounds};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_picks_binding_constraint() {
        let b = TimeBounds {
            compute_ns: 1.0,
            l1_ns: 2.0,
            memory_ns: 5.0,
            latency_ns: 4.0,
            atomic_ns: 0.0,
        };
        assert_eq!(b.max_ns(), 5.0);
        assert_eq!(b.binding(), "memory");
    }

    #[test]
    fn merge_sums_bounds() {
        let mut a = TimeBounds {
            compute_ns: 1.0,
            ..Default::default()
        };
        a.merge(&TimeBounds {
            compute_ns: 2.0,
            atomic_ns: 3.0,
            ..Default::default()
        });
        assert_eq!(a.compute_ns, 3.0);
        assert_eq!(a.atomic_ns, 3.0);
    }

    #[test]
    fn transactions_per_mem_slot_handles_zero() {
        assert_eq!(KernelStats::default().transactions_per_mem_slot(), 0.0);
        let s = KernelStats {
            mem_slots: 4,
            transactions: 10,
            ..Default::default()
        };
        assert!((s.transactions_per_mem_slot() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn kernel_stats_merge_accumulates() {
        let mut a = KernelStats {
            launches: 1,
            threads: 32,
            time_ns: 10.0,
            ..Default::default()
        };
        let b = KernelStats {
            launches: 1,
            threads: 64,
            time_ns: 5.0,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.launches, 2);
        assert_eq!(a.threads, 96);
        assert_eq!(a.time_ns, 15.0);
    }
}

//! # scu-mem — memory-system substrate for the SCU reproduction
//!
//! This crate models the parts of a GPU memory hierarchy that matter for
//! the experiments in *SCU: A GPU Stream Compaction Unit for Graph
//! Processing* (ISCA 2019):
//!
//! * byte addresses and cache-line math ([`mod@line`]),
//! * set-associative write-back caches with LRU replacement ([`cache`]),
//! * intra-warp and streaming request coalescers ([`coalescer`]),
//! * a bank/row-buffer DRAM timing and energy model with GDDR5 and
//!   LPDDR4 parameter sets ([`dram`]),
//! * a combined L2 + DRAM [`system::MemorySystem`] shared by the GPU
//!   model (`scu-gpu`) and the SCU device model (`scu-core`),
//! * traffic statistics used by the energy model ([`stats`]).
//!
//! The models are first-order and event-based rather than cycle-by-cycle:
//! each access is classified (L2 hit, DRAM row hit, DRAM row miss) and
//! charged latency, bandwidth and energy accordingly. This captures the
//! effects the paper's evaluation depends on — memory divergence, cache
//! pressure and bandwidth saturation — as motivated in `DESIGN.md`.
//!
//! ## Example
//!
//! ```
//! use scu_mem::system::{MemorySystem, MemorySystemConfig};
//! use scu_mem::cache::AccessKind;
//!
//! let mut mem = MemorySystem::new(MemorySystemConfig::gtx980());
//! let outcome = mem.access(0x1000, AccessKind::Read);
//! assert!(!outcome.l2_hit); // cold miss
//! let outcome = mem.access(0x1000, AccessKind::Read);
//! assert!(outcome.l2_hit);
//! ```

pub mod buffer;
pub mod cache;
pub mod coalescer;
pub mod dram;
pub mod line;
pub mod stats;
pub mod system;

pub use buffer::{DeviceAllocator, DeviceArray};
pub use cache::{AccessKind, Cache, CacheConfig};
pub use coalescer::{StreamCoalescer, WarpCoalescer};
pub use dram::{Dram, DramConfig};
pub use line::{line_containing, line_index, Addr, LineSize};
pub use system::{MemOutcome, MemorySystem, MemorySystemConfig, RunOutcome, TxRun};

//! Combined L2 + DRAM memory system.
//!
//! Both the GPU model (`scu-gpu`) and the SCU device model (`scu-core`)
//! issue line-granularity transactions into one shared
//! [`MemorySystem`], mirroring Figure 5 of the paper where the SCU sits
//! on the SM interconnect with access to the shared L2. Private L1
//! caches live in the GPU model; everything behind them is here.

use crate::cache::{AccessKind, Cache, CacheConfig};
use crate::dram::{Dram, DramConfig};
use crate::line::{Addr, LineSize};
use crate::stats::MemoryStats;
use scu_trace::{Event, MemSource, Probe};

/// Parameters of a [`MemorySystem`].
#[derive(Debug, Clone)]
pub struct MemorySystemConfig {
    /// Shared L2 geometry.
    pub l2: CacheConfig,
    /// DRAM device parameters.
    pub dram: DramConfig,
    /// L2 hit latency in nanoseconds (interconnect + array).
    pub l2_hit_latency_ns: f64,
    /// Peak L2 throughput in bytes per nanosecond, used as a service
    /// bound for traffic windows.
    pub l2_bw_bytes_per_ns: f64,
}

impl MemorySystemConfig {
    /// GTX 980 memory side: 2 MB 16-way L2, 4 GB GDDR5 @ 224 GB/s
    /// (paper Table 3).
    pub fn gtx980() -> Self {
        MemorySystemConfig {
            l2: CacheConfig::new(2 * 1024 * 1024, LineSize::L128, 16)
                .expect("static geometry is valid"),
            dram: DramConfig::gddr5_4gb(),
            l2_hit_latency_ns: 24.0,
            // L2 can source roughly 1 line / 2 core cycles @1.27 GHz.
            l2_bw_bytes_per_ns: 512.0,
        }
    }

    /// Tegra X1 memory side: 256 KB 16-way L2, 4 GB LPDDR4 @ 25.6 GB/s
    /// (paper Table 4).
    pub fn tx1() -> Self {
        MemorySystemConfig {
            l2: CacheConfig::new(256 * 1024, LineSize::L128, 16).expect("static geometry is valid"),
            dram: DramConfig::lpddr4_4gb(),
            l2_hit_latency_ns: 28.0,
            l2_bw_bytes_per_ns: 64.0,
        }
    }
}

/// Outcome of one memory-system access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemOutcome {
    /// The access hit in the shared L2.
    pub l2_hit: bool,
    /// End-to-end latency observed by the requester, ns.
    pub latency_ns: f64,
}

/// Aggregate outcome of a batched [`MemorySystem::access_run`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOutcome {
    /// Number of line accesses performed.
    pub lines: u64,
    /// How many of them hit in the shared L2.
    pub l2_hits: u64,
    /// Summed end-to-end latency over the run, ns.
    pub latency_ns: f64,
}

/// One L2-bound transaction run: `lines` consecutive line accesses
/// starting at `addr`, all of `kind`.
///
/// This is the unit every replayed access stream is expressed in —
/// the GPU engine's ordered L2 replay and the SCU's sequential
/// streams both reduce to a sequence of `TxRun`s applied through
/// [`MemorySystem::apply_run`], so the shared L2/DRAM observes one
/// canonical transaction vocabulary regardless of which frontend
/// produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxRun {
    /// First line's address (any byte within the line).
    pub addr: Addr,
    /// Number of consecutive lines; must be at least 1.
    pub lines: u64,
    /// Read or write, applied to every line of the run.
    pub kind: AccessKind,
}

/// Shared L2 + DRAM.
///
/// ```
/// use scu_mem::{AccessKind, MemorySystem, MemorySystemConfig};
///
/// let mut mem = MemorySystem::new(MemorySystemConfig::tx1());
/// mem.access(0x0, AccessKind::Write);
/// let snap = mem.stats();
/// assert_eq!(snap.l2.accesses, 1);
/// assert_eq!(snap.dram.reads, 1); // write-allocate fill
/// ```
#[derive(Debug, Clone)]
pub struct MemorySystem {
    cfg: MemorySystemConfig,
    l2: Cache,
    dram: Dram,
    l2_bytes: u64,
    probe: Probe,
    window_anchor: MemoryStats,
}

impl MemorySystem {
    /// Creates a cold memory system.
    pub fn new(cfg: MemorySystemConfig) -> Self {
        let l2 = Cache::new(cfg.l2);
        let dram = Dram::new(cfg.dram.clone());
        MemorySystem {
            cfg,
            l2,
            dram,
            l2_bytes: 0,
            probe: Probe::off(),
            window_anchor: MemoryStats::default(),
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &MemorySystemConfig {
        &self.cfg
    }

    /// Attaches (or detaches, with [`Probe::off`]) the trace probe and
    /// re-anchors the traffic window at the current counters.
    pub fn set_probe(&mut self, probe: Probe) {
        self.probe = probe;
        self.window_anchor = self.stats();
    }

    /// Emits an [`Event::MemWindow`] covering all traffic since the
    /// last window (or since [`MemorySystem::set_probe`]) attributed to
    /// `source`, and re-anchors the window.
    pub fn emit_window(&mut self, source: MemSource) {
        let now = self.stats();
        self.probe.emit_with(|| Event::MemWindow {
            source,
            stats: Box::new(now.since(&self.window_anchor)),
        });
        self.window_anchor = now;
    }

    /// Performs one line-granularity access.
    ///
    /// Misses fill from DRAM (write-allocate); dirty victims write back
    /// to DRAM. The returned latency covers L2 plus any DRAM fill; the
    /// write-back is charged to bandwidth, not the requester's latency.
    pub fn access(&mut self, addr: Addr, kind: AccessKind) -> MemOutcome {
        self.l2_bytes += self.cfg.l2.line_size.bytes() as u64;
        let out = self.l2.access(addr, kind);
        let mut latency = self.cfg.l2_hit_latency_ns;
        if !out.hit {
            let fill = self.dram.access(addr, AccessKind::Read);
            latency += fill.latency_ns;
        }
        if out.dirty_eviction {
            // Victim address is unknown at line granularity in a
            // tag-only model; charge the write-back at the accessed
            // address's bank neighbourhood, which preserves traffic and
            // approximate locality.
            self.dram.access(addr, AccessKind::Write);
        }
        if self.probe.wants_mem_access() {
            self.probe.emit(Event::MemAccess {
                addr,
                write: matches!(kind, AccessKind::Write),
                l2_hit: out.hit,
            });
        }
        MemOutcome {
            l2_hit: out.hit,
            latency_ns: latency,
        }
    }

    /// Performs `lines` consecutive line-granularity accesses starting
    /// at `addr`, one line apart — the batched fast path for coalesced
    /// runs (sequential stream reads/writes, warp-coalesced spans).
    ///
    /// Behaviour is access-for-access identical to calling
    /// [`MemorySystem::access`] once per line in ascending address
    /// order; only the per-access overhead is amortised: the L2
    /// bandwidth counter is bumped once for the whole run and the
    /// trace-probe branch is hoisted out of the loop. The returned
    /// outcome aggregates the run: `latency_ns` is the sum over the
    /// individual accesses and `l2_hits` counts how many of them hit.
    pub fn access_run(&mut self, addr: Addr, lines: u64, kind: AccessKind) -> RunOutcome {
        let line_bytes = self.cfg.l2.line_size.bytes() as u64;
        self.l2_bytes += line_bytes * lines;
        let is_write = matches!(kind, AccessKind::Write);
        let want_trace = self.probe.wants_mem_access();
        let mut hits = 0u64;
        let mut latency = 0.0;
        let mut a = addr;
        for _ in 0..lines {
            let out = self.l2.access(a, kind);
            latency += self.cfg.l2_hit_latency_ns;
            if out.hit {
                hits += 1;
            } else {
                let fill = self.dram.access(a, AccessKind::Read);
                latency += fill.latency_ns;
            }
            if out.dirty_eviction {
                self.dram.access(a, AccessKind::Write);
            }
            if want_trace {
                self.probe.emit(Event::MemAccess {
                    addr: a,
                    write: is_write,
                    l2_hit: out.hit,
                });
            }
            a += line_bytes;
        }
        RunOutcome {
            lines,
            l2_hits: hits,
            latency_ns: latency,
        }
    }

    /// Applies one [`TxRun`]: the single replay entry point for
    /// ordered transaction streams.
    ///
    /// Behaviour is exactly [`MemorySystem::access`] for a one-line
    /// run and [`MemorySystem::access_run`] otherwise — access for
    /// access, in ascending address order — so a stream replayed
    /// through `apply_run` drives the L2/DRAM through the identical
    /// state sequence as the loop that recorded it.
    pub fn apply_run(&mut self, run: TxRun) -> RunOutcome {
        if run.lines == 1 {
            let out = self.access(run.addr, run.kind);
            RunOutcome {
                lines: 1,
                l2_hits: out.l2_hit as u64,
                latency_ns: out.latency_ns,
            }
        } else {
            self.access_run(run.addr, run.lines, run.kind)
        }
    }

    /// A sector-granularity access (32 bytes of L2 bandwidth instead
    /// of a full line) — used for the SCU's hash-table probes, whose
    /// entries are 4-32 bytes ("bytes/line" in the paper's Table 2).
    /// DRAM behaviour on a miss is unchanged (a full line still
    /// fills), only the on-chip bandwidth accounting narrows.
    pub fn access_sector(&mut self, addr: Addr, kind: AccessKind) -> MemOutcome {
        self.l2_bytes += 32;
        let out = self.l2.access(addr, kind);
        let mut latency = self.cfg.l2_hit_latency_ns;
        if !out.hit {
            let fill = self.dram.access(addr, AccessKind::Read);
            latency += fill.latency_ns;
        }
        if out.dirty_eviction {
            self.dram.access(addr, AccessKind::Write);
        }
        if self.probe.wants_mem_access() {
            self.probe.emit(Event::MemAccess {
                addr,
                write: matches!(kind, AccessKind::Write),
                l2_hit: out.hit,
            });
        }
        MemOutcome {
            l2_hit: out.hit,
            latency_ns: latency,
        }
    }

    /// Reads the DRAM line behind the L2 without allocating — used for
    /// streaming traffic that the modelled hardware marks non-cacheable.
    pub fn access_uncached(&mut self, addr: Addr, kind: AccessKind) -> MemOutcome {
        let a = self.dram.access(addr, kind);
        if self.probe.wants_mem_access() {
            self.probe.emit(Event::MemAccess {
                addr,
                write: matches!(kind, AccessKind::Write),
                l2_hit: false,
            });
        }
        MemOutcome {
            l2_hit: false,
            latency_ns: a.latency_ns,
        }
    }

    /// Combined counters snapshot.
    pub fn stats(&self) -> MemoryStats {
        MemoryStats {
            l2: *self.l2.stats(),
            dram: *self.dram.stats(),
        }
    }

    /// Minimum service time for all traffic issued so far: the max of
    /// the DRAM bound and the L2 throughput bound, ns.
    pub fn service_time_ns(&self) -> f64 {
        let l2_time = self.l2_bytes as f64 / self.cfg.l2_bw_bytes_per_ns;
        self.dram.busy_time_ns().max(l2_time)
    }

    /// DRAM-only service bound, ns (used for Figure 13 bandwidth
    /// utilisation).
    pub fn dram_busy_time_ns(&self) -> f64 {
        self.dram.busy_time_ns()
    }

    /// Direct access to the L2 model (for probing in tests/ablation).
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Direct access to the DRAM model.
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Resets all statistics and busy time, keeping cache/row state.
    pub fn reset_stats(&mut self) {
        self.l2.reset_stats();
        self.dram.reset_stats();
        self.l2_bytes = 0;
    }

    /// Fully clears caches, rows and statistics.
    pub fn clear(&mut self) {
        self.l2.clear();
        self.dram.clear();
        self.l2_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut m = MemorySystem::new(MemorySystemConfig::gtx980());
        let first = m.access(0x4000, AccessKind::Read);
        assert!(!first.l2_hit);
        let second = m.access(0x4000, AccessKind::Read);
        assert!(second.l2_hit);
        assert!(second.latency_ns < first.latency_ns);
    }

    #[test]
    fn write_allocate_generates_fill() {
        let mut m = MemorySystem::new(MemorySystemConfig::tx1());
        m.access(0, AccessKind::Write);
        let s = m.stats();
        assert_eq!(s.dram.reads, 1);
        assert_eq!(s.dram.writes, 0);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut m = MemorySystem::new(MemorySystemConfig::tx1());
        let sets = m.config().l2.num_sets();
        let ways = m.config().l2.associativity as u64;
        let stride = sets * 128;
        // Fill one set with dirty lines, then one more to force a
        // dirty write-back.
        for i in 0..=ways {
            m.access(i * stride, AccessKind::Write);
        }
        assert!(m.stats().dram.writes >= 1);
    }

    #[test]
    fn uncached_bypasses_l2() {
        let mut m = MemorySystem::new(MemorySystemConfig::tx1());
        m.access_uncached(0, AccessKind::Read);
        assert_eq!(m.stats().l2.accesses, 0);
        assert_eq!(m.stats().dram.reads, 1);
        // Line is not resident afterwards.
        assert!(!m.l2().probe(0));
    }

    #[test]
    fn service_time_grows_with_traffic() {
        let mut m = MemorySystem::new(MemorySystemConfig::tx1());
        let t0 = m.service_time_ns();
        for i in 0..1000u64 {
            m.access(i * 128, AccessKind::Read);
        }
        assert!(m.service_time_ns() > t0);
    }

    #[test]
    fn reset_stats_zeroes_counters() {
        let mut m = MemorySystem::new(MemorySystemConfig::gtx980());
        m.access(0, AccessKind::Read);
        m.reset_stats();
        let s = m.stats();
        assert_eq!(s.l2.accesses, 0);
        assert_eq!(s.dram.reads, 0);
        assert_eq!(m.service_time_ns(), 0.0);
    }

    #[test]
    fn probe_windows_cover_traffic_since_anchor() {
        use scu_trace::{Probe, RecordingSink};
        use std::cell::RefCell;
        use std::rc::Rc;

        let mut m = MemorySystem::new(MemorySystemConfig::tx1());
        m.access(0, AccessKind::Read); // pre-probe traffic is excluded
        let sink = Rc::new(RefCell::new(RecordingSink::new("t", false)));
        m.set_probe(Probe::new(sink.clone()));
        m.access(128, AccessKind::Read);
        m.emit_window(MemSource::Gpu);
        m.access(256, AccessKind::Write);
        m.emit_window(MemSource::Scu);
        m.set_probe(Probe::off());
        let tl = Rc::try_unwrap(sink).unwrap().into_inner().finish();
        let windows: Vec<_> = tl
            .events
            .iter()
            .filter_map(|e| match &e.event {
                Event::MemWindow { source, stats } => Some((*source, **stats)),
                _ => None,
            })
            .collect();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].0, MemSource::Gpu);
        assert_eq!(windows[0].1.l2.accesses, 1);
        assert_eq!(windows[1].0, MemSource::Scu);
        assert_eq!(windows[1].1.l2.writes, 1);
    }

    #[test]
    fn mem_access_events_are_opt_in() {
        use scu_trace::{Probe, RecordingSink};
        use std::cell::RefCell;
        use std::rc::Rc;

        let quiet = Rc::new(RefCell::new(RecordingSink::new("t", false)));
        let mut m = MemorySystem::new(MemorySystemConfig::tx1());
        m.set_probe(Probe::new(quiet.clone()));
        m.access(0, AccessKind::Read);
        m.set_probe(Probe::off());
        let tl = Rc::try_unwrap(quiet).unwrap().into_inner().finish();
        assert!(tl.events.is_empty());

        let chatty = Rc::new(RefCell::new(
            RecordingSink::new("t", false).with_mem_access(true),
        ));
        let mut m = MemorySystem::new(MemorySystemConfig::tx1());
        m.set_probe(Probe::new(chatty.clone()));
        m.access(0, AccessKind::Read);
        m.access_uncached(128, AccessKind::Write);
        m.set_probe(Probe::off());
        let tl = Rc::try_unwrap(chatty).unwrap().into_inner().finish();
        let accesses: Vec<_> = tl
            .events
            .iter()
            .filter_map(|e| match e.event {
                Event::MemAccess {
                    addr,
                    write,
                    l2_hit,
                } => Some((addr, write, l2_hit)),
                _ => None,
            })
            .collect();
        assert_eq!(accesses, vec![(0, false, false), (128, true, false)]);
    }

    #[test]
    fn access_run_matches_sequential_accesses() {
        let mut batched = MemorySystem::new(MemorySystemConfig::tx1());
        let mut serial = MemorySystem::new(MemorySystemConfig::tx1());
        // Warm both with identical mixed traffic so the run starts from
        // non-trivial L2/DRAM state.
        for i in 0..200u64 {
            let kind = if i % 3 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            batched.access(i * 37 * 128, kind);
            serial.access(i * 37 * 128, kind);
        }
        let base = 0x1_0000;
        let run = batched.access_run(base, 16, AccessKind::Write);
        let mut latency = 0.0;
        let mut hits = 0u64;
        for i in 0..16u64 {
            let out = serial.access(base + i * 128, AccessKind::Write);
            latency += out.latency_ns;
            hits += out.l2_hit as u64;
        }
        assert_eq!(run.lines, 16);
        assert_eq!(run.l2_hits, hits);
        assert!((run.latency_ns - latency).abs() < 1e-9);
        assert_eq!(batched.stats(), serial.stats());
        assert_eq!(batched.service_time_ns(), serial.service_time_ns());
    }

    #[test]
    fn apply_run_matches_both_underlying_paths() {
        let mut via_run = MemorySystem::new(MemorySystemConfig::tx1());
        let mut direct = MemorySystem::new(MemorySystemConfig::tx1());
        // Single line: identical to one access().
        let a = via_run.apply_run(TxRun {
            addr: 0x2000,
            lines: 1,
            kind: AccessKind::Read,
        });
        let b = direct.access(0x2000, AccessKind::Read);
        assert_eq!(a.lines, 1);
        assert_eq!(a.l2_hits, b.l2_hit as u64);
        assert!((a.latency_ns - b.latency_ns).abs() < 1e-12);
        // Multi-line: identical to one access_run().
        let a = via_run.apply_run(TxRun {
            addr: 0x8000,
            lines: 5,
            kind: AccessKind::Write,
        });
        let b = direct.access_run(0x8000, 5, AccessKind::Write);
        assert_eq!(a, b);
        assert_eq!(via_run.stats(), direct.stats());
        assert_eq!(via_run.service_time_ns(), direct.service_time_ns());
    }

    #[test]
    fn l2_hits_do_not_touch_dram() {
        let mut m = MemorySystem::new(MemorySystemConfig::gtx980());
        m.access(0, AccessKind::Read);
        let before = m.stats().dram;
        for _ in 0..10 {
            m.access(0, AccessKind::Read);
        }
        assert_eq!(m.stats().dram, before);
    }
}

//! Bank/row-buffer DRAM model.
//!
//! Replaces the paper's DRAMSim2 integration (§5) with a first-order
//! model that keeps what the evaluation depends on:
//!
//! * **row-buffer locality** — sequential (SCU-style) streams hit open
//!   rows; divergent (GPU-style sparse) streams pay
//!   precharge + activate on most accesses;
//! * **bank- and channel-level parallelism** — service time is the
//!   maximum of per-bank busy time and per-channel data-bus time;
//! * **technology split** — [`DramConfig::gddr5_4gb`] (224 GB/s, GTX 980)
//!   vs [`DramConfig::lpddr4_4gb`] (25.6 GB/s, Tegra X1), with
//!   per-access energy constants in the Micron power-calculator style.
//!
//! The module is split into [`config`] (parameter sets), [`timing`]
//! (the bank state machine) and [`energy`] (per-event energy constants).

pub mod config;
pub mod energy;
pub mod timing;

pub use config::DramConfig;
pub use energy::DramEnergyParams;
pub use timing::{Dram, DramAccess};

//! Bank state machine and service-time accounting.

use super::config::DramConfig;
use crate::cache::AccessKind;
use crate::line::Addr;
use crate::stats::DramStats;

/// Result of one DRAM access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramAccess {
    /// The access found its row open in the bank's row buffer.
    pub row_hit: bool,
    /// Latency this access observes (CAS, or PRE+ACT+CAS), ns.
    pub latency_ns: f64,
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
    busy_ns: f64,
}

/// DRAM device model: per-bank open-row tracking plus busy-time
/// accounting for banks and channel data buses.
///
/// Service time of a traffic window is
/// [`Dram::busy_time_ns`] = max(max bank busy, max channel-bus busy):
/// a stream limited by row-miss turnaround is bank-bound, a fully
/// coalesced stream is bus(bandwidth)-bound. Address mapping interleaves
/// consecutive 128-byte lines across channels, then packs
/// `lines_per_row` consecutive per-channel lines into one row, so
/// sequential streams enjoy row-buffer locality and scattered streams
/// do not.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    banks: Vec<Bank>,
    channel_bus_ns: Vec<f64>,
    stats: DramStats,
}

impl Dram {
    /// Creates an idle device.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`DramConfig::validate`].
    pub fn new(cfg: DramConfig) -> Self {
        cfg.validate().expect("invalid DRAM config");
        let banks = vec![
            Bank {
                open_row: None,
                busy_ns: 0.0
            };
            cfg.total_banks() as usize
        ];
        let channel_bus_ns = vec![0.0; cfg.channels as usize];
        Dram {
            cfg,
            banks,
            channel_bus_ns,
            stats: DramStats::default(),
        }
    }

    /// The configuration this device was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Maps a byte address to `(channel, bank_global_index, row)`.
    fn map(&self, addr: Addr) -> (u32, usize, u64) {
        let line = self.cfg.access_bytes.index_of(addr);
        let ch = (line % self.cfg.channels as u64) as u32;
        let per_ch = line / self.cfg.channels as u64;
        let lines_per_row = self.cfg.lines_per_row() as u64;
        let row_chunk = per_ch / lines_per_row;
        let bank_in_ch = (row_chunk % self.cfg.banks_per_channel as u64) as u32;
        let row = row_chunk / self.cfg.banks_per_channel as u64;
        let bank_global = (ch * self.cfg.banks_per_channel + bank_in_ch) as usize;
        (ch, bank_global, row)
    }

    /// Services one line-granularity access at `addr`.
    pub fn access(&mut self, addr: Addr, kind: AccessKind) -> DramAccess {
        let (ch, bank_idx, row) = self.map(addr);
        let bank = &mut self.banks[bank_idx];

        let row_hit = bank.open_row == Some(row);
        let latency_ns = if row_hit {
            self.stats.row_hits += 1;
            self.cfg.t_cas_ns
        } else {
            self.stats.row_misses += 1;
            self.stats.activations += 1;
            bank.open_row = Some(row);
            // Precharge only needed if another row was open.
            self.cfg.t_rp_ns + self.cfg.t_rcd_ns + self.cfg.t_cas_ns
        };

        bank.busy_ns += latency_ns;
        let bus = self.cfg.access_bus_time_ns();
        self.channel_bus_ns[ch as usize] += bus;

        match kind {
            AccessKind::Read => self.stats.reads += 1,
            AccessKind::Write => self.stats.writes += 1,
        }
        self.stats.bytes += self.cfg.access_bytes.bytes() as u64;

        DramAccess {
            row_hit,
            latency_ns: latency_ns + bus,
        }
    }

    /// Minimum time needed to service all traffic issued so far,
    /// assuming perfect overlap across banks and channels: the maximum
    /// of any bank's busy time and any channel bus's busy time, ns.
    pub fn busy_time_ns(&self) -> f64 {
        let bank = self.banks.iter().map(|b| b.busy_ns).fold(0.0, f64::max);
        let bus = self.channel_bus_ns.iter().copied().fold(0.0, f64::max);
        bank.max(bus)
    }

    /// Total bytes moved so far divided by peak bandwidth, ns — the
    /// bandwidth lower bound on service time.
    pub fn bandwidth_time_ns(&self) -> f64 {
        self.cfg.transfer_time_ns(self.stats.bytes)
    }

    /// Resets counters and busy time but keeps open-row state.
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
        for b in &mut self.banks {
            b.busy_ns = 0.0;
        }
        self.channel_bus_ns.fill(0.0);
    }

    /// Closes all rows, resets counters and busy time.
    pub fn clear(&mut self) {
        for b in &mut self.banks {
            *b = Bank {
                open_row: None,
                busy_ns: 0.0,
            };
        }
        self.channel_bus_ns.fill(0.0);
        self.stats = DramStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gddr5() -> Dram {
        Dram::new(DramConfig::gddr5_4gb())
    }

    #[test]
    fn first_access_is_row_miss() {
        let mut d = gddr5();
        let a = d.access(0, AccessKind::Read);
        assert!(!a.row_hit);
        assert_eq!(d.stats().row_misses, 1);
        assert_eq!(d.stats().activations, 1);
    }

    #[test]
    fn same_line_rereference_hits_row() {
        let mut d = gddr5();
        d.access(0, AccessKind::Read);
        let a = d.access(64, AccessKind::Read); // same line, same row
        assert!(a.row_hit);
    }

    #[test]
    fn sequential_stream_mostly_row_hits() {
        let mut d = gddr5();
        // 1 MiB sequential stream in 128B granules.
        for i in 0..8192u64 {
            d.access(i * 128, AccessKind::Read);
        }
        let s = d.stats();
        assert!(
            s.row_hit_rate() > 0.9,
            "sequential row hit rate {} too low",
            s.row_hit_rate()
        );
    }

    #[test]
    fn scattered_stream_mostly_row_misses() {
        let mut d = gddr5();
        // Stride of 1 MiB: every access lands in a new row chunk.
        for i in 0..1000u64 {
            d.access(i * (1 << 20), AccessKind::Read);
        }
        assert!(d.stats().row_hit_rate() < 0.2);
    }

    #[test]
    fn bytes_accumulate() {
        let mut d = gddr5();
        for i in 0..10u64 {
            d.access(i * 128, AccessKind::Write);
        }
        assert_eq!(d.stats().bytes, 1280);
        assert_eq!(d.stats().writes, 10);
    }

    #[test]
    fn busy_time_at_least_bandwidth_time() {
        let mut d = gddr5();
        for i in 0..10_000u64 {
            d.access(i * 128, AccessKind::Read);
        }
        assert!(d.busy_time_ns() >= 0.0);
        // Sequential traffic: bus-bound, so busy >= bandwidth bound per
        // channel which is >= aggregate bound.
        assert!(d.busy_time_ns() + 1e-6 >= d.bandwidth_time_ns());
    }

    #[test]
    fn scattered_traffic_bank_bound() {
        let mut seq = gddr5();
        let mut scat = gddr5();
        for i in 0..4096u64 {
            seq.access(i * 128, AccessKind::Read);
            scat.access((i * 7919) % (1 << 20) * 4096, AccessKind::Read);
        }
        assert!(
            scat.busy_time_ns() > seq.busy_time_ns(),
            "scattered {} should exceed sequential {}",
            scat.busy_time_ns(),
            seq.busy_time_ns()
        );
    }

    #[test]
    fn channels_spread_sequential_lines() {
        let d = gddr5();
        let (ch0, ..) = d.map(0);
        let (ch1, ..) = d.map(128);
        assert_ne!(ch0, ch1);
    }

    #[test]
    fn reset_stats_keeps_open_rows() {
        let mut d = gddr5();
        d.access(0, AccessKind::Read);
        d.reset_stats();
        let a = d.access(64, AccessKind::Read);
        assert!(a.row_hit, "row should remain open across reset_stats");
        assert_eq!(d.stats().reads, 1);
    }

    #[test]
    fn clear_closes_rows() {
        let mut d = gddr5();
        d.access(0, AccessKind::Read);
        d.clear();
        let a = d.access(0, AccessKind::Read);
        assert!(!a.row_hit);
    }
}

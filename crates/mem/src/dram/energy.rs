//! Per-event DRAM energy constants.
//!
//! The paper obtains DRAM power from GPUWattch (GDDR5) and the Micron
//! LPDDR4 power calculator (TN-53-01). We adopt the same event-based
//! formulation: `E = reads*E_rd + writes*E_wr + activations*E_act +
//! P_background * t`. The constants below are datasheet-class
//! per-access energies (GDDR5 interface ≈ 14–20 pJ/bit, LPDDR4 ≈
//! 4–6 pJ/bit) scaled to the 128-byte access granule.

/// Energy constants for one DRAM technology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramEnergyParams {
    /// Energy per 128-byte read access, picojoules.
    pub read_pj_per_access: f64,
    /// Energy per 128-byte write access, picojoules.
    pub write_pj_per_access: f64,
    /// Energy per row activation (ACT + PRE pair), picojoules.
    pub activation_pj: f64,
    /// Background (static + refresh) power, milliwatts.
    pub background_mw: f64,
}

impl DramEnergyParams {
    /// GDDR5 constants (GPUWattch-class): ~18 pJ/bit interface energy.
    pub fn gddr5() -> Self {
        DramEnergyParams {
            read_pj_per_access: 18_000.0,
            write_pj_per_access: 19_000.0,
            activation_pj: 2_200.0,
            background_mw: 2_000.0,
        }
    }

    /// LPDDR4 constants (Micron TN-53-01 class): ~5 pJ/bit.
    pub fn lpddr4() -> Self {
        DramEnergyParams {
            read_pj_per_access: 5_200.0,
            write_pj_per_access: 5_600.0,
            activation_pj: 1_400.0,
            background_mw: 120.0,
        }
    }

    /// Dynamic energy in picojoules for the given event counts.
    pub fn dynamic_pj(&self, reads: u64, writes: u64, activations: u64) -> f64 {
        reads as f64 * self.read_pj_per_access
            + writes as f64 * self.write_pj_per_access
            + activations as f64 * self.activation_pj
    }

    /// Background energy in picojoules over `elapsed_ns` nanoseconds.
    ///
    /// 1 mW × 1 ns = 1 pJ, so this is simply `background_mw *
    /// elapsed_ns`.
    pub fn background_pj(&self, elapsed_ns: f64) -> f64 {
        self.background_mw * elapsed_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_energy_sums_events() {
        let e = DramEnergyParams::gddr5();
        let pj = e.dynamic_pj(2, 1, 1);
        let expect = 2.0 * 18_000.0 + 19_000.0 + 2_200.0;
        assert!((pj - expect).abs() < 1e-9);
    }

    #[test]
    fn background_is_power_times_time() {
        let e = DramEnergyParams::lpddr4();
        // 120 mW for 1 microsecond = 120 nJ = 120_000 pJ.
        assert!((e.background_pj(1_000.0) - 120_000.0).abs() < 1e-9);
    }

    #[test]
    fn lpddr4_cheaper_per_access() {
        let g = DramEnergyParams::gddr5();
        let l = DramEnergyParams::lpddr4();
        assert!(l.read_pj_per_access < g.read_pj_per_access);
        assert!(l.background_mw < g.background_mw);
    }
}

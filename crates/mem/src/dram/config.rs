//! DRAM device parameter sets.

use super::energy::DramEnergyParams;
use crate::line::LineSize;

/// Parameters of a DRAM subsystem.
///
/// Two presets mirror the paper's evaluation platforms:
/// [`DramConfig::gddr5_4gb`] for the GTX 980 and
/// [`DramConfig::lpddr4_4gb`] for the Tegra X1.
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Human-readable name ("GDDR5", "LPDDR4").
    pub name: &'static str,
    /// Total capacity in bytes (4 GiB for both modelled systems).
    pub capacity_bytes: u64,
    /// Independent channels.
    pub channels: u32,
    /// Banks per channel.
    pub banks_per_channel: u32,
    /// Row (page) size per bank, in bytes.
    pub row_bytes: u32,
    /// Access granularity — one L2 line fill/writeback.
    pub access_bytes: LineSize,
    /// Aggregate peak bandwidth in bytes/second.
    pub peak_bw_bytes_per_sec: f64,
    /// Column access latency (CAS) in nanoseconds.
    pub t_cas_ns: f64,
    /// Row-to-column delay (RCD) in nanoseconds.
    pub t_rcd_ns: f64,
    /// Row precharge in nanoseconds.
    pub t_rp_ns: f64,
    /// Per-event energy constants.
    pub energy: DramEnergyParams,
}

impl DramConfig {
    /// 4 GB GDDR5 at 224 GB/s — the GTX 980 memory system (Table 3).
    ///
    /// Timing follows typical 7 Gbps GDDR5 datasheet values; energy
    /// constants follow GPUWattch-style GDDR5 per-access costs.
    pub fn gddr5_4gb() -> Self {
        DramConfig {
            name: "GDDR5",
            capacity_bytes: 4 << 30,
            channels: 8,
            banks_per_channel: 16,
            row_bytes: 2048,
            access_bytes: LineSize::L128,
            peak_bw_bytes_per_sec: 224.0e9,
            t_cas_ns: 12.0,
            t_rcd_ns: 12.0,
            t_rp_ns: 12.0,
            energy: DramEnergyParams::gddr5(),
        }
    }

    /// 4 GB LPDDR4 at 25.6 GB/s — the Tegra X1 memory system (Table 4).
    ///
    /// Timing follows LPDDR4-3200 datasheet class values; energy
    /// constants follow the Micron LPDDR4 power calculator (TN-53-01)
    /// style used by the paper.
    pub fn lpddr4_4gb() -> Self {
        DramConfig {
            name: "LPDDR4",
            capacity_bytes: 4 << 30,
            channels: 2,
            banks_per_channel: 8,
            row_bytes: 4096,
            access_bytes: LineSize::L128,
            peak_bw_bytes_per_sec: 25.6e9,
            t_cas_ns: 18.0,
            t_rcd_ns: 18.0,
            t_rp_ns: 18.0,
            energy: DramEnergyParams::lpddr4(),
        }
    }

    /// Total number of banks across all channels.
    pub fn total_banks(&self) -> u32 {
        self.channels * self.banks_per_channel
    }

    /// Lines (access granules) per row.
    pub fn lines_per_row(&self) -> u32 {
        self.row_bytes / self.access_bytes.bytes()
    }

    /// Time to move `bytes` at peak bandwidth, in nanoseconds.
    pub fn transfer_time_ns(&self, bytes: u64) -> f64 {
        bytes as f64 / self.peak_bw_bytes_per_sec * 1e9
    }

    /// Per-channel data-bus time for one access granule, in ns.
    pub fn access_bus_time_ns(&self) -> f64 {
        let per_channel_bw = self.peak_bw_bytes_per_sec / self.channels as f64;
        self.access_bytes.bytes() as f64 / per_channel_bw * 1e9
    }

    /// Validates internal consistency (row size divisible by access
    /// granule, nonzero geometry).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0 || self.banks_per_channel == 0 {
            return Err("channel/bank counts must be positive".into());
        }
        if !self.row_bytes.is_multiple_of(self.access_bytes.bytes()) {
            return Err(format!(
                "row size {} not a multiple of access granule {}",
                self.row_bytes,
                self.access_bytes.bytes()
            ));
        }
        if self.peak_bw_bytes_per_sec <= 0.0 {
            return Err("peak bandwidth must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        DramConfig::gddr5_4gb().validate().unwrap();
        DramConfig::lpddr4_4gb().validate().unwrap();
    }

    #[test]
    fn gddr5_geometry() {
        let c = DramConfig::gddr5_4gb();
        assert_eq!(c.total_banks(), 128);
        assert_eq!(c.lines_per_row(), 16);
    }

    #[test]
    fn transfer_time_matches_peak_bw() {
        let c = DramConfig::gddr5_4gb();
        // 224 GB in one second.
        let t = c.transfer_time_ns(224_000_000_000);
        assert!((t - 1e9).abs() / 1e9 < 1e-9);
    }

    #[test]
    fn lpddr4_slower_than_gddr5() {
        let g = DramConfig::gddr5_4gb();
        let l = DramConfig::lpddr4_4gb();
        assert!(l.peak_bw_bytes_per_sec < g.peak_bw_bytes_per_sec);
        assert!(l.access_bus_time_ns() > g.access_bus_time_ns());
        // But LPDDR4 costs less energy per bit.
        assert!(l.energy.read_pj_per_access < g.energy.read_pj_per_access);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = DramConfig::gddr5_4gb();
        c.channels = 0;
        assert!(c.validate().is_err());
        let mut c = DramConfig::gddr5_4gb();
        c.row_bytes = 100;
        assert!(c.validate().is_err());
    }
}

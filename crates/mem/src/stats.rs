//! Traffic counters shared by the cache, DRAM and system models.
//!
//! All counters are plain event counts; the energy model in `scu-energy`
//! multiplies them by per-event energies, and the timing models divide
//! byte counts by peak bandwidth. Every stats struct supports
//! [`merge`](CacheStats::merge)-style accumulation so per-phase
//! measurements can be rolled up into per-application totals.

use serde::{Deserialize, Serialize};

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total accesses (reads + writes).
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (and allocated).
    pub misses: u64,
    /// Write accesses (subset of `accesses`).
    pub writes: u64,
    /// Dirty evictions (write-back traffic toward the next level).
    pub writebacks: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero if there were no accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.writes += other.writes;
        self.writebacks += other.writebacks;
    }

    /// Difference `self - other`, for windowed measurements where
    /// `other` is a snapshot taken at the start of the window.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `other` is not an earlier snapshot of
    /// the same counter stream (any counter would go negative).
    pub fn since(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            accesses: self.accesses - other.accesses,
            hits: self.hits - other.hits,
            misses: self.misses - other.misses,
            writes: self.writes - other.writes,
            writebacks: self.writebacks - other.writebacks,
        }
    }
}

/// DRAM access counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Read bursts serviced.
    pub reads: u64,
    /// Write bursts serviced.
    pub writes: u64,
    /// Accesses that hit an open row.
    pub row_hits: u64,
    /// Accesses that required precharge + activate.
    pub row_misses: u64,
    /// Total bytes transferred on the data bus.
    pub bytes: u64,
    /// Row activations issued.
    pub activations: u64,
}

impl DramStats {
    /// Row-buffer hit rate in `[0, 1]`; zero if there were no accesses.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: &DramStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.bytes += other.bytes;
        self.activations += other.activations;
    }

    /// Difference `self - other` (see [`CacheStats::since`]).
    pub fn since(&self, other: &DramStats) -> DramStats {
        DramStats {
            reads: self.reads - other.reads,
            writes: self.writes - other.writes,
            row_hits: self.row_hits - other.row_hits,
            row_misses: self.row_misses - other.row_misses,
            bytes: self.bytes - other.bytes,
            activations: self.activations - other.activations,
        }
    }
}

/// Combined snapshot of an entire [`crate::system::MemorySystem`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryStats {
    /// L2 counters.
    pub l2: CacheStats,
    /// DRAM counters.
    pub dram: DramStats,
}

impl MemoryStats {
    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: &MemoryStats) {
        self.l2.merge(&other.l2);
        self.dram.merge(&other.dram);
    }

    /// Difference `self - other` (see [`CacheStats::since`]).
    pub fn since(&self, other: &MemoryStats) -> MemoryStats {
        MemoryStats {
            l2: self.l2.since(&other.l2),
            dram: self.dram.since(&other.dram),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let s = CacheStats {
            accesses: 4,
            hits: 3,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CacheStats {
            accesses: 1,
            hits: 1,
            ..Default::default()
        };
        let b = CacheStats {
            accesses: 2,
            misses: 2,
            writebacks: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.accesses, 3);
        assert_eq!(a.hits, 1);
        assert_eq!(a.misses, 2);
        assert_eq!(a.writebacks, 1);
    }

    #[test]
    fn since_subtracts_snapshot() {
        let start = DramStats {
            reads: 10,
            bytes: 320,
            ..Default::default()
        };
        let end = DramStats {
            reads: 15,
            bytes: 480,
            row_hits: 3,
            ..Default::default()
        };
        let w = end.since(&start);
        assert_eq!(w.reads, 5);
        assert_eq!(w.bytes, 160);
        assert_eq!(w.row_hits, 3);
    }

    #[test]
    fn row_hit_rate_handles_zero() {
        assert_eq!(DramStats::default().row_hit_rate(), 0.0);
        let s = DramStats {
            row_hits: 1,
            row_misses: 3,
            ..Default::default()
        };
        assert!((s.row_hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn memory_stats_roll_up() {
        let mut m = MemoryStats::default();
        m.merge(&MemoryStats {
            l2: CacheStats {
                accesses: 5,
                ..Default::default()
            },
            dram: DramStats {
                bytes: 64,
                ..Default::default()
            },
        });
        assert_eq!(m.l2.accesses, 5);
        assert_eq!(m.dram.bytes, 64);
    }
}

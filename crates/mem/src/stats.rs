//! Traffic counters shared by the cache, DRAM and system models.
//!
//! The structs themselves live in `scu-trace` (the bottom of the
//! dependency order) so trace events can carry them; they are
//! re-exported here, their historical home, and all existing paths
//! (`scu_mem::stats::CacheStats`, …) keep working. All counters are
//! plain event counts; the energy model in `scu-energy` multiplies
//! them by per-event energies, and the timing models divide byte
//! counts by peak bandwidth. Every stats struct supports
//! [`merge`](CacheStats::merge)-style accumulation so per-phase
//! measurements can be rolled up into per-application totals.

pub use scu_trace::{CacheStats, DramStats, MemoryStats};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let s = CacheStats {
            accesses: 4,
            hits: 3,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CacheStats {
            accesses: 1,
            hits: 1,
            ..Default::default()
        };
        let b = CacheStats {
            accesses: 2,
            misses: 2,
            writebacks: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.accesses, 3);
        assert_eq!(a.hits, 1);
        assert_eq!(a.misses, 2);
        assert_eq!(a.writebacks, 1);
    }

    #[test]
    fn since_subtracts_snapshot() {
        let start = DramStats {
            reads: 10,
            bytes: 320,
            ..Default::default()
        };
        let end = DramStats {
            reads: 15,
            bytes: 480,
            row_hits: 3,
            ..Default::default()
        };
        let w = end.since(&start);
        assert_eq!(w.reads, 5);
        assert_eq!(w.bytes, 160);
        assert_eq!(w.row_hits, 3);
    }

    #[test]
    fn row_hit_rate_handles_zero() {
        assert_eq!(DramStats::default().row_hit_rate(), 0.0);
        let s = DramStats {
            row_hits: 1,
            row_misses: 3,
            ..Default::default()
        };
        assert!((s.row_hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn memory_stats_roll_up() {
        let mut m = MemoryStats::default();
        m.merge(&MemoryStats {
            l2: CacheStats {
                accesses: 5,
                ..Default::default()
            },
            dram: DramStats {
                bytes: 64,
                ..Default::default()
            },
        });
        assert_eq!(m.l2.accesses, 5);
        assert_eq!(m.dram.bytes, 64);
    }
}

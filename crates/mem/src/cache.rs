//! Set-associative cache model with LRU replacement.
//!
//! The model tracks tags only (no data): an access classifies as hit or
//! miss, allocates on miss, and reports whether a dirty victim was
//! evicted (the write-back traffic feeds the DRAM model). Timing is not
//! modelled here — the owning [`crate::system::MemorySystem`] and the
//! GPU/SCU engines charge latency and bandwidth from the outcome.
//!
//! Storage is a single contiguous `Box<[Way]>` indexed as
//! `set * associativity + way` rather than a `Vec<Vec<Way>>`: one
//! allocation, no pointer chase per set, and the whole working set of
//! tag metadata stays cache-line-dense under the simulator's own L1.

use crate::line::{Addr, LineSize};
use crate::stats::CacheStats;

/// Whether an access reads or writes the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load; allocates the line clean on miss.
    Read,
    /// A store; write-allocate, marks the line dirty.
    Write,
}

/// Geometry of a [`Cache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes. Must be a multiple of
    /// `line_size * associativity`.
    pub size_bytes: u64,
    /// Line size.
    pub line_size: LineSize,
    /// Number of ways per set.
    pub associativity: u32,
}

impl CacheConfig {
    /// Creates a config, validating that the geometry divides evenly.
    ///
    /// # Errors
    ///
    /// Returns a message if the capacity is not a positive multiple of
    /// `line_size * associativity` or the resulting set count is not a
    /// power of two.
    pub fn new(size_bytes: u64, line_size: LineSize, associativity: u32) -> Result<Self, String> {
        if associativity == 0 {
            return Err("associativity must be positive".to_string());
        }
        let way_bytes = line_size.bytes() as u64 * associativity as u64;
        if size_bytes == 0 || !size_bytes.is_multiple_of(way_bytes) {
            return Err(format!(
                "cache size {size_bytes} is not a positive multiple of line*ways = {way_bytes}"
            ));
        }
        let sets = size_bytes / way_bytes;
        if !sets.is_power_of_two() {
            return Err(format!("set count {sets} is not a power of two"));
        }
        Ok(CacheConfig {
            size_bytes,
            line_size,
            associativity,
        })
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.line_size.bytes() as u64 * self.associativity as u64)
    }

    /// Total number of lines the cache can hold.
    pub fn num_lines(&self) -> u64 {
        self.size_bytes / self.line_size.bytes() as u64
    }
}

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheOutcome {
    /// The access hit in the cache.
    pub hit: bool,
    /// A dirty line was evicted to make room (write-back traffic).
    pub dirty_eviction: bool,
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic timestamp of last touch; smallest is LRU.
    last_use: u64,
}

impl Way {
    const EMPTY: Way = Way {
        tag: 0,
        valid: false,
        dirty: false,
        last_use: 0,
    };
}

/// A set-associative, write-back, write-allocate cache with LRU
/// replacement, tracking tags only.
///
/// ```
/// use scu_mem::cache::{AccessKind, Cache, CacheConfig};
/// use scu_mem::line::LineSize;
///
/// let cfg = CacheConfig::new(32 * 1024, LineSize::L128, 4).unwrap();
/// let mut l1 = Cache::new(cfg);
/// assert!(!l1.access(0, AccessKind::Read).hit);
/// assert!(l1.access(64, AccessKind::Read).hit); // same line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// All ways of all sets, contiguous: `set * assoc + way`.
    ways: Box<[Way]>,
    assoc: usize,
    set_mask: u64,
    /// Precomputed `set_mask.count_ones()` so the hot path does not
    /// recompute the tag shift per access.
    tag_shift: u32,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let num_sets = cfg.num_sets();
        let assoc = cfg.associativity as usize;
        let set_mask = num_sets - 1;
        Cache {
            cfg,
            ways: vec![Way::EMPTY; num_sets as usize * assoc].into_boxed_slice(),
            assoc,
            set_mask,
            tag_shift: set_mask.count_ones(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The geometry this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated hit/miss/write-back counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets counters but keeps cache contents (useful to exclude
    /// warm-up from a measurement window).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidates every line and clears statistics.
    pub fn clear(&mut self) {
        self.ways.fill(Way::EMPTY);
        self.clock = 0;
        self.stats = CacheStats::default();
    }

    #[inline]
    fn locate(&self, addr: Addr) -> (usize, u64) {
        let line = self.cfg.line_size.index_of(addr);
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.tag_shift;
        (set, tag)
    }

    /// Performs one access at `addr` (any byte within the line).
    ///
    /// Misses allocate; the LRU way is evicted, and the outcome reports
    /// whether the victim was dirty.
    pub fn access(&mut self, addr: Addr, kind: AccessKind) -> CacheOutcome {
        self.clock += 1;
        let (set_idx, tag) = self.locate(addr);
        let base = set_idx * self.assoc;
        let set = &mut self.ways[base..base + self.assoc];

        self.stats.accesses += 1;
        if kind == AccessKind::Write {
            self.stats.writes += 1;
        }

        // Hit search and victim selection in one pass: remember the
        // first invalid way (preferred victim) and the least-recently
        // used valid way as we scan for the tag.
        let mut invalid: Option<usize> = None;
        let mut lru = 0usize;
        let mut lru_use = u64::MAX;
        for (i, w) in set.iter_mut().enumerate() {
            if w.valid {
                if w.tag == tag {
                    w.last_use = self.clock;
                    if kind == AccessKind::Write {
                        w.dirty = true;
                    }
                    self.stats.hits += 1;
                    return CacheOutcome {
                        hit: true,
                        dirty_eviction: false,
                    };
                }
                if w.last_use < lru_use {
                    lru_use = w.last_use;
                    lru = i;
                }
            } else if invalid.is_none() {
                invalid = Some(i);
            }
        }

        self.stats.misses += 1;

        // Victim: first invalid way, else LRU (ties resolve to the
        // lowest index, matching a `min_by_key` scan).
        let victim = invalid.unwrap_or(lru);
        let dirty_eviction = set[victim].valid && set[victim].dirty;
        if dirty_eviction {
            self.stats.writebacks += 1;
        }
        set[victim] = Way {
            tag,
            valid: true,
            dirty: kind == AccessKind::Write,
            last_use: self.clock,
        };
        CacheOutcome {
            hit: false,
            dirty_eviction,
        }
    }

    /// Returns `true` if the line containing `addr` is currently
    /// resident (without touching LRU state or counters).
    pub fn probe(&self, addr: Addr) -> bool {
        let (set_idx, tag) = self.locate(addr);
        let base = set_idx * self.assoc;
        self.ways[base..base + self.assoc]
            .iter()
            .any(|w| w.valid && w.tag == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(ways: u32) -> Cache {
        // 4 sets x `ways` ways x 128B lines.
        let cfg = CacheConfig::new(4 * ways as u64 * 128, LineSize::L128, ways).unwrap();
        Cache::new(cfg)
    }

    #[test]
    fn config_validation() {
        assert!(CacheConfig::new(0, LineSize::L128, 4).is_err());
        assert!(CacheConfig::new(100, LineSize::L128, 4).is_err());
        assert!(CacheConfig::new(1024, LineSize::L128, 0).is_err());
        // 3 sets -> not a power of two
        assert!(CacheConfig::new(3 * 4 * 128, LineSize::L128, 4).is_err());
        let cfg = CacheConfig::new(2 * 1024 * 1024, LineSize::L128, 16).unwrap();
        assert_eq!(cfg.num_sets(), 1024);
        assert_eq!(cfg.num_lines(), 16384);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small_cache(2);
        assert!(!c.access(0x100, AccessKind::Read).hit);
        assert!(c.access(0x100, AccessKind::Read).hit);
        assert!(c.access(0x17f, AccessKind::Read).hit); // same 128B line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small_cache(2);
        // Three lines mapping to set 0 (stride = 4 sets * 128B).
        let stride = 4 * 128;
        c.access(0, AccessKind::Read);
        c.access(stride, AccessKind::Read);
        // Touch line 0 so `stride` becomes LRU.
        c.access(0, AccessKind::Read);
        c.access(2 * stride, AccessKind::Read); // evicts `stride`
        assert!(c.probe(0));
        assert!(!c.probe(stride));
        assert!(c.probe(2 * stride));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = small_cache(1);
        let stride = 4 * 128;
        let out = c.access(0, AccessKind::Write);
        assert!(!out.hit && !out.dirty_eviction);
        let out = c.access(stride, AccessKind::Read);
        assert!(!out.hit && out.dirty_eviction);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_not_reported_as_writeback() {
        let mut c = small_cache(1);
        let stride = 4 * 128;
        c.access(0, AccessKind::Read);
        let out = c.access(stride, AccessKind::Read);
        assert!(!out.dirty_eviction);
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small_cache(1);
        let stride = 4 * 128;
        c.access(0, AccessKind::Read);
        c.access(0, AccessKind::Write); // hit, now dirty
        let out = c.access(stride, AccessKind::Read);
        assert!(out.dirty_eviction);
    }

    #[test]
    fn clear_resets_contents_and_stats() {
        let mut c = small_cache(2);
        c.access(0, AccessKind::Write);
        c.clear();
        assert!(!c.probe(0));
        assert_eq!(c.stats().accesses, 0);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = small_cache(2);
        c.access(0, AccessKind::Read);
        c.reset_stats();
        assert!(c.probe(0));
        assert!(c.access(0, AccessKind::Read).hit);
        assert_eq!(c.stats().accesses, 1);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = small_cache(1);
        // 4 sets: lines 0..4 map to distinct sets.
        for i in 0..4u64 {
            c.access(i * 128, AccessKind::Read);
        }
        for i in 0..4u64 {
            assert!(c.probe(i * 128), "line {i} should still be resident");
        }
    }

    #[test]
    fn single_pass_victim_matches_two_pass_semantics() {
        // Fill a 2-way set, invalidate nothing, touch in an order that
        // makes the *second* way the LRU — the victim must be the LRU
        // way, not the first scanned.
        let mut c = small_cache(2);
        let stride = 4 * 128;
        c.access(0, AccessKind::Read); // way 0
        c.access(stride, AccessKind::Read); // way 1
        c.access(0, AccessKind::Read); // way 1 now LRU
        c.access(2 * stride, AccessKind::Read); // must evict way 1
        assert!(c.probe(0));
        assert!(!c.probe(stride));
    }
}

//! Simulated device memory: a bump allocator and typed arrays.
//!
//! A [`DeviceArray<T>`] owns its data host-side (plain `Vec<T>`) and a
//! base address in the simulated 64-bit device address space, so each
//! element has a stable byte address that the timing model can coalesce
//! and cache. Allocation is a bump [`DeviceAllocator`]; arrays are
//! line-aligned so the access-pattern geometry matches what a CUDA
//! `cudaMalloc` would produce.

use crate::line::Addr;

/// Alignment applied to every allocation (one 128-byte cache line).
pub const ALLOC_ALIGN: u64 = 128;

/// Bump allocator handing out disjoint, line-aligned address ranges.
///
/// ```
/// use scu_mem::buffer::{DeviceAllocator, DeviceArray};
/// let mut alloc = DeviceAllocator::new();
/// let a: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 100);
/// let b: DeviceArray<u64> = DeviceArray::zeroed(&mut alloc, 100);
/// assert!(b.base() >= a.base() + 400);
/// assert_eq!(a.base() % 128, 0);
/// ```
#[derive(Debug, Clone)]
pub struct DeviceAllocator {
    next: Addr,
}

impl DeviceAllocator {
    /// Creates an allocator starting at a nonzero base (so address 0 is
    /// never valid data, catching stray zero addresses in tests).
    pub fn new() -> Self {
        DeviceAllocator { next: 0x1_0000 }
    }

    /// Reserves `bytes` bytes and returns the base address.
    pub fn alloc(&mut self, bytes: u64) -> Addr {
        let base = self.next;
        let aligned = bytes.div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
        self.next += aligned.max(ALLOC_ALIGN);
        base
    }

    /// Total bytes reserved so far (high-water mark).
    pub fn allocated_bytes(&self) -> u64 {
        self.next - 0x1_0000
    }
}

impl Default for DeviceAllocator {
    fn default() -> Self {
        DeviceAllocator::new()
    }
}

/// A typed array resident in simulated device memory.
///
/// Element `i` of a `DeviceArray<T>` lives at byte address
/// `base + i * size_of::<T>()`. The *contents* are ordinary host
/// memory; kernels access them through
/// `ThreadCtx::load` / `ThreadCtx::store` (in `scu-gpu`) so that the
/// timing model
/// observes the addresses, or directly via [`DeviceArray::as_slice`]
/// for host-side (untimed) setup and verification.
#[derive(Debug, Clone)]
pub struct DeviceArray<T> {
    base: Addr,
    data: Vec<T>,
}

impl<T: Copy + Default> DeviceArray<T> {
    /// Allocates `len` default-initialised elements.
    pub fn zeroed(alloc: &mut DeviceAllocator, len: usize) -> Self {
        Self::from_vec(alloc, vec![T::default(); len])
    }
}

impl<T: Copy> DeviceArray<T> {
    /// Moves a host vector into device memory.
    pub fn from_vec(alloc: &mut DeviceAllocator, data: Vec<T>) -> Self {
        let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        let base = alloc.alloc(bytes.max(1));
        DeviceArray { base, data }
    }

    /// Base byte address of element 0.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Byte address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn addr(&self, i: usize) -> Addr {
        assert!(
            i < self.data.len(),
            "index {i} out of bounds ({})",
            self.data.len()
        );
        self.base + (i * std::mem::size_of::<T>()) as Addr
    }

    /// Element size in bytes.
    pub fn elem_bytes(&self) -> usize {
        std::mem::size_of::<T>()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Host-side view of the contents (no simulated traffic).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Host-side mutable view of the contents (no simulated traffic).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Host-side read of element `i` (no simulated traffic).
    #[inline]
    pub fn get(&self, i: usize) -> T {
        self.data[i]
    }

    /// Host-side write of element `i` (no simulated traffic).
    #[inline]
    pub fn set(&mut self, i: usize, v: T) {
        self.data[i] = v;
    }

    /// Consumes the array, returning the host vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let mut a = DeviceAllocator::new();
        let x: DeviceArray<u32> = DeviceArray::zeroed(&mut a, 33);
        let y: DeviceArray<u32> = DeviceArray::zeroed(&mut a, 1);
        assert_eq!(x.base() % ALLOC_ALIGN, 0);
        assert_eq!(y.base() % ALLOC_ALIGN, 0);
        assert!(y.base() >= x.base() + 33 * 4);
    }

    #[test]
    fn zero_length_array_still_gets_space() {
        let mut a = DeviceAllocator::new();
        let x: DeviceArray<u32> = DeviceArray::zeroed(&mut a, 0);
        let y: DeviceArray<u32> = DeviceArray::zeroed(&mut a, 4);
        assert!(x.is_empty());
        assert_ne!(x.base(), y.base());
    }

    #[test]
    fn element_addresses_are_strided() {
        let mut a = DeviceAllocator::new();
        let x: DeviceArray<u64> = DeviceArray::zeroed(&mut a, 8);
        assert_eq!(x.addr(3) - x.addr(0), 24);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn addr_bounds_checked() {
        let mut a = DeviceAllocator::new();
        let x: DeviceArray<u32> = DeviceArray::zeroed(&mut a, 4);
        let _ = x.addr(4);
    }

    #[test]
    fn from_vec_preserves_contents() {
        let mut a = DeviceAllocator::new();
        let x = DeviceArray::from_vec(&mut a, vec![5u32, 6, 7]);
        assert_eq!(x.as_slice(), &[5, 6, 7]);
        assert_eq!(x.into_vec(), vec![5, 6, 7]);
    }

    #[test]
    fn host_get_set_roundtrip() {
        let mut a = DeviceAllocator::new();
        let mut x: DeviceArray<i32> = DeviceArray::zeroed(&mut a, 4);
        x.set(2, -9);
        assert_eq!(x.get(2), -9);
    }

    #[test]
    fn allocated_bytes_tracks_high_water() {
        let mut a = DeviceAllocator::new();
        assert_eq!(a.allocated_bytes(), 0);
        let _: DeviceArray<u8> = DeviceArray::zeroed(&mut a, 130);
        assert_eq!(a.allocated_bytes(), 256);
    }
}

//! Byte addresses and cache-line arithmetic.
//!
//! All simulated memory in this workspace is addressed with flat 64-bit
//! byte addresses ([`Addr`]). Cache lines are power-of-two sized;
//! [`LineSize`] validates the invariant once so the hot line-math helpers
//! can use shifts and masks without re-checking.

use std::fmt;

/// A flat 64-bit byte address in the simulated device memory.
pub type Addr = u64;

/// A validated power-of-two cache-line size in bytes.
///
/// GPU L1/L2 caches in the modelled systems use 128-byte lines; the
/// in-memory hash table used by the SCU filtering/grouping unit reuses
/// the same geometry. Construct with [`LineSize::new`]:
///
/// ```
/// use scu_mem::line::LineSize;
/// let ls = LineSize::new(128).unwrap();
/// assert_eq!(ls.bytes(), 128);
/// assert_eq!(ls.line_of(130), 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineSize {
    bytes: u32,
    shift: u32,
}

/// Error returned by [`LineSize::new`] for a zero or non-power-of-two size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidLineSize(pub u32);

impl fmt::Display for InvalidLineSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line size {} is not a positive power of two", self.0)
    }
}

impl std::error::Error for InvalidLineSize {}

impl LineSize {
    /// The 128-byte line used by both modelled GPUs (Maxwell-class L1/L2).
    pub const L128: LineSize = LineSize {
        bytes: 128,
        shift: 7,
    };

    /// The 32-byte DRAM burst granule used by the bandwidth model.
    pub const B32: LineSize = LineSize {
        bytes: 32,
        shift: 5,
    };

    /// Creates a line size of `bytes` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidLineSize`] if `bytes` is zero or not a power of
    /// two.
    pub fn new(bytes: u32) -> Result<Self, InvalidLineSize> {
        if bytes == 0 || !bytes.is_power_of_two() {
            return Err(InvalidLineSize(bytes));
        }
        Ok(LineSize {
            bytes,
            shift: bytes.trailing_zeros(),
        })
    }

    /// The line size in bytes.
    #[inline]
    pub fn bytes(self) -> u32 {
        self.bytes
    }

    /// log2 of the line size.
    #[inline]
    pub fn shift(self) -> u32 {
        self.shift
    }

    /// The base address of the line containing `addr`.
    #[inline]
    pub fn line_of(self, addr: Addr) -> Addr {
        addr & !((self.bytes as Addr) - 1)
    }

    /// The ordinal index of the line containing `addr`
    /// (i.e. `addr / line_size`).
    #[inline]
    pub fn index_of(self, addr: Addr) -> u64 {
        addr >> self.shift
    }

    /// Number of lines spanned by the byte range `[addr, addr + len)`.
    ///
    /// A zero-length range spans zero lines.
    #[inline]
    pub fn lines_spanned(self, addr: Addr, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let first = self.index_of(addr);
        let last = self.index_of(addr + len - 1);
        last - first + 1
    }
}

impl Default for LineSize {
    fn default() -> Self {
        LineSize::L128
    }
}

impl fmt::Display for LineSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.bytes)
    }
}

/// Base address of the 128-byte line containing `addr`.
///
/// Convenience wrapper over [`LineSize::L128`]; the cache and coalescer
/// models take explicit [`LineSize`] values instead.
#[inline]
pub fn line_containing(addr: Addr) -> Addr {
    LineSize::L128.line_of(addr)
}

/// Ordinal 128-byte line index of `addr`.
#[inline]
pub fn line_index(addr: Addr) -> u64 {
    LineSize::L128.index_of(addr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_power_of_two() {
        assert!(LineSize::new(0).is_err());
        assert!(LineSize::new(96).is_err());
        assert!(LineSize::new(129).is_err());
    }

    #[test]
    fn accepts_powers_of_two() {
        for p in [1u32, 2, 4, 32, 128, 4096] {
            let ls = LineSize::new(p).unwrap();
            assert_eq!(ls.bytes(), p);
            assert_eq!(1u32 << ls.shift(), p);
        }
    }

    #[test]
    fn line_of_masks_low_bits() {
        let ls = LineSize::new(128).unwrap();
        assert_eq!(ls.line_of(0), 0);
        assert_eq!(ls.line_of(127), 0);
        assert_eq!(ls.line_of(128), 128);
        assert_eq!(ls.line_of(1000), 896);
    }

    #[test]
    fn index_of_divides() {
        let ls = LineSize::new(32).unwrap();
        assert_eq!(ls.index_of(0), 0);
        assert_eq!(ls.index_of(31), 0);
        assert_eq!(ls.index_of(32), 1);
        assert_eq!(ls.index_of(64), 2);
    }

    #[test]
    fn lines_spanned_counts_inclusive_range() {
        let ls = LineSize::new(128).unwrap();
        assert_eq!(ls.lines_spanned(0, 0), 0);
        assert_eq!(ls.lines_spanned(0, 1), 1);
        assert_eq!(ls.lines_spanned(0, 128), 1);
        assert_eq!(ls.lines_spanned(0, 129), 2);
        assert_eq!(ls.lines_spanned(127, 2), 2);
        assert_eq!(ls.lines_spanned(4, 4 * 128), 5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(LineSize::L128.to_string(), "128B");
        assert_eq!(
            InvalidLineSize(96).to_string(),
            "line size 96 is not a positive power of two"
        );
    }

    #[test]
    fn helper_functions_use_128b_lines() {
        assert_eq!(line_containing(200), 128);
        assert_eq!(line_index(256), 2);
    }
}

//! Request coalescers.
//!
//! Two flavours are modelled:
//!
//! * [`WarpCoalescer`] — the intra-warp coalescer of a streaming
//!   multiprocessor: a warp's (up to 32) per-thread addresses are merged
//!   into the set of distinct cache lines they touch. The number of
//!   resulting transactions is the *memory divergence* of the access —
//!   1 is perfectly coalesced, 32 is fully divergent.
//! * [`StreamCoalescer`] — the SCU's coalescing unit (§3.2.3 of the
//!   paper): a sliding merge window over an in-order request stream that
//!   merges requests to a recently seen line. The paper's configuration
//!   holds up to 32 in-flight requests with a merge window of 4
//!   elements (Table 1).

use crate::line::{Addr, LineSize};
use serde::{Deserialize, Serialize};

/// Intra-warp address coalescer.
///
/// ```
/// use scu_mem::coalescer::WarpCoalescer;
/// use scu_mem::line::LineSize;
///
/// let c = WarpCoalescer::new(LineSize::L128);
/// // 32 consecutive 4-byte words: one transaction.
/// let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
/// assert_eq!(c.transactions(&addrs).len(), 1);
/// // 32 widely scattered words: 32 transactions.
/// let addrs: Vec<u64> = (0..32).map(|i| i * 4096).collect();
/// assert_eq!(c.transactions(&addrs).len(), 32);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WarpCoalescer {
    line_size: LineSize,
}

impl WarpCoalescer {
    /// Creates a coalescer for the given line size.
    pub fn new(line_size: LineSize) -> Self {
        WarpCoalescer { line_size }
    }

    /// The line size requests are merged at.
    pub fn line_size(&self) -> LineSize {
        self.line_size
    }

    /// Returns the distinct line base addresses touched by the warp's
    /// per-thread addresses, in first-touch order.
    ///
    /// Inactive threads should simply be omitted from `addrs`.
    pub fn transactions(&self, addrs: &[Addr]) -> Vec<Addr> {
        let mut out: Vec<Addr> = Vec::with_capacity(addrs.len().min(8));
        self.transactions_into(addrs, &mut out);
        out
    }

    /// [`Self::transactions`] into a caller-owned buffer, so hot loops
    /// can reuse one allocation across warps. The buffer is cleared
    /// first; on return it holds the distinct lines in first-touch
    /// order.
    pub fn transactions_into(&self, addrs: &[Addr], out: &mut Vec<Addr>) {
        out.clear();
        for &a in addrs {
            let line = self.line_size.line_of(a);
            if !out.contains(&line) {
                out.push(line);
            }
        }
    }

    /// Number of transactions without materialising them.
    ///
    /// Warp accesses are at most 32 threads wide, so the distinct-line
    /// scratch fits on the stack for every caller in the simulator; the
    /// heap path only exists for oversized inputs.
    pub fn transaction_count(&self, addrs: &[Addr]) -> usize {
        if addrs.len() <= 32 {
            let mut lines = [0u64; 32];
            let mut n = 0usize;
            for &a in addrs {
                let line = self.line_size.line_of(a);
                if !lines[..n].contains(&line) {
                    lines[n] = line;
                    n += 1;
                }
            }
            n
        } else {
            self.transactions(addrs).len()
        }
    }
}

/// Statistics accumulated by a [`StreamCoalescer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamCoalescerStats {
    /// Requests fed into the unit.
    pub requests_in: u64,
    /// Requests issued to memory after merging.
    pub requests_out: u64,
}

impl StreamCoalescerStats {
    /// Fraction of input requests eliminated by merging, in `[0, 1]`.
    pub fn merge_rate(&self) -> f64 {
        if self.requests_in == 0 {
            0.0
        } else {
            1.0 - self.requests_out as f64 / self.requests_in as f64
        }
    }
}

/// The SCU's streaming coalescing unit.
///
/// Requests arrive in order; a request whose line matches one of the
/// last `window` issued lines is merged into it and produces no new
/// memory transaction. This models the paper's "merge window of 4
/// elements" (Table 1): it exploits spatial locality between *nearby*
/// stream elements without reordering the stream.
///
/// ```
/// use scu_mem::coalescer::StreamCoalescer;
/// use scu_mem::line::LineSize;
///
/// let mut c = StreamCoalescer::new(LineSize::L128, 4);
/// // Four 4-byte elements in the same line: one issue.
/// assert!(c.push(0).is_some());
/// assert!(c.push(4).is_none());
/// assert!(c.push(8).is_none());
/// assert_eq!(c.stats().requests_out, 1);
/// ```
#[derive(Debug, Clone)]
pub struct StreamCoalescer {
    line_size: LineSize,
    window: usize,
    /// Fixed-capacity ring holding the last `window` issued lines;
    /// `head` is the slot the next issue overwrites once full. Only
    /// membership matters for merging, so eviction order (FIFO) is the
    /// only ordering the ring must preserve.
    recent: Vec<Addr>,
    head: usize,
    stats: StreamCoalescerStats,
}

impl StreamCoalescer {
    /// Creates a coalescer merging at `line_size` granularity over a
    /// window of `window` outstanding lines.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(line_size: LineSize, window: usize) -> Self {
        assert!(window > 0, "merge window must be positive");
        StreamCoalescer {
            line_size,
            window,
            recent: Vec::with_capacity(window),
            head: 0,
            stats: StreamCoalescerStats::default(),
        }
    }

    /// Feeds one request; returns `Some(line)` if a new memory
    /// transaction for that line must be issued, `None` if the request
    /// merged into an in-flight one.
    pub fn push(&mut self, addr: Addr) -> Option<Addr> {
        self.stats.requests_in += 1;
        let line = self.line_size.line_of(addr);
        if self.recent.contains(&line) {
            return None;
        }
        if self.recent.len() < self.window {
            self.recent.push(line);
        } else {
            self.recent[self.head] = line;
            self.head = (self.head + 1) % self.window;
        }
        self.stats.requests_out += 1;
        Some(line)
    }

    /// Feeds a whole slice, returning the issued line addresses.
    pub fn push_all(&mut self, addrs: &[Addr]) -> Vec<Addr> {
        addrs.iter().filter_map(|&a| self.push(a)).collect()
    }

    /// Clears the merge window (e.g. between operations) but keeps the
    /// accumulated statistics.
    pub fn flush(&mut self) {
        self.recent.clear();
        self.head = 0;
    }

    /// Accumulated merge statistics.
    pub fn stats(&self) -> &StreamCoalescerStats {
        &self.stats
    }

    /// Resets statistics and the merge window.
    pub fn reset(&mut self) {
        self.recent.clear();
        self.head = 0;
        self.stats = StreamCoalescerStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warp_coalescer_fully_coalesced() {
        let c = WarpCoalescer::new(LineSize::L128);
        let addrs: Vec<Addr> = (0..32).map(|i| 1000 * 128 + i * 4).collect();
        assert_eq!(c.transaction_count(&addrs), 1);
    }

    #[test]
    fn warp_coalescer_straddling_two_lines() {
        let c = WarpCoalescer::new(LineSize::L128);
        // 32 x 4B starting at offset 64 straddles two 128B lines.
        let addrs: Vec<Addr> = (0..32).map(|i| 64 + i * 4).collect();
        assert_eq!(c.transaction_count(&addrs), 2);
    }

    #[test]
    fn warp_coalescer_fully_divergent() {
        let c = WarpCoalescer::new(LineSize::L128);
        let addrs: Vec<Addr> = (0..32).map(|i| i * 4096).collect();
        assert_eq!(c.transaction_count(&addrs), 32);
    }

    #[test]
    fn warp_coalescer_preserves_first_touch_order() {
        let c = WarpCoalescer::new(LineSize::L128);
        let tx = c.transactions(&[300, 10, 305]);
        assert_eq!(tx, vec![256, 0]);
    }

    #[test]
    fn warp_coalescer_empty_warp() {
        let c = WarpCoalescer::new(LineSize::L128);
        assert_eq!(c.transaction_count(&[]), 0);
    }

    #[test]
    fn stream_coalescer_merges_sequential() {
        let mut c = StreamCoalescer::new(LineSize::L128, 4);
        // 128 sequential 4-byte elements = 4 lines.
        let addrs: Vec<Addr> = (0..128).map(|i| i * 4).collect();
        let issued = c.push_all(&addrs);
        assert_eq!(issued.len(), 4);
        assert!((c.stats().merge_rate() - (1.0 - 4.0 / 128.0)).abs() < 1e-12);
    }

    #[test]
    fn stream_coalescer_window_eviction() {
        let mut c = StreamCoalescer::new(LineSize::L128, 2);
        // a, b, c distinct lines; revisiting a after the window slid past
        // it issues again.
        assert!(c.push(0).is_some());
        assert!(c.push(128).is_some());
        assert!(c.push(256).is_some()); // evicts line 0
        assert!(c.push(0).is_some());
        assert_eq!(c.stats().requests_out, 4);
    }

    #[test]
    fn stream_coalescer_random_stream_rarely_merges() {
        let mut c = StreamCoalescer::new(LineSize::L128, 4);
        let addrs: Vec<Addr> = (0..100).map(|i| (i * 7919) % 1000 * 4096).collect();
        let issued = c.push_all(&addrs);
        // With 4 KiB-separated addresses nothing shares a line except
        // exact repeats inside the window.
        assert!(issued.len() >= 90, "issued {}", issued.len());
    }

    #[test]
    fn stream_coalescer_flush_clears_window_keeps_stats() {
        let mut c = StreamCoalescer::new(LineSize::L128, 4);
        c.push(0);
        c.flush();
        assert!(c.push(0).is_some()); // window cleared => reissued
        assert_eq!(c.stats().requests_in, 2);
        assert_eq!(c.stats().requests_out, 2);
    }

    #[test]
    #[should_panic(expected = "merge window must be positive")]
    fn stream_coalescer_zero_window_panics() {
        let _ = StreamCoalescer::new(LineSize::L128, 0);
    }

    #[test]
    fn merge_rate_zero_when_empty() {
        assert_eq!(StreamCoalescerStats::default().merge_rate(), 0.0);
    }
}

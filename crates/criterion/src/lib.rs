//! Offline stand-in for `criterion`.
//!
//! The build environment has no network and no registry cache, so the
//! real criterion cannot be resolved. This crate keeps the calling
//! convention of the subset the workspace's benches use —
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! [`BenchmarkId::new`], [`criterion_group!`]/[`criterion_main!`] —
//! and reports min/mean/max wall-clock per iteration on stdout. No
//! statistical analysis or plots.
//!
//! Two environment variables make the stub scriptable for regression
//! gating (see `EXPERIMENTS.md`):
//!
//! - `SCU_BENCH_JSON=PATH` — append one JSON line per finished
//!   benchmark (`{"name", "min_ns", "mean_ns", "max_ns", "samples"}`)
//!   to `PATH`. Append-only so every bench binary of a `cargo bench`
//!   run can share one file.
//! - `SCU_BENCH_SAMPLES=N` — override every group's `sample_size`,
//!   letting CI run a fast smoke pass without editing the benches.
//!
//! Benches that need real parallelism can call [`mark_degraded`] when
//! the host offers fewer cores than the benchmark requested; JSONL
//! lines emitted while the flag is set carry `"degraded": true`, and
//! `bench_gate` refuses to bake such records into the committed
//! baseline.

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

static DEGRADED: AtomicBool = AtomicBool::new(false);

/// Marks benchmark records emitted from now on as measured under
/// degraded parallelism — the host offered fewer cores than the bench
/// requested, so multi-thread timings understate real hardware. Set it
/// before the affected `bench_function` call and clear it afterwards;
/// tagged JSONL lines carry `"degraded": true`.
pub fn mark_degraded(on: bool) {
    DEGRADED.store(on, Ordering::Relaxed);
}

/// A two-part benchmark name (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Joins a function name and parameter display.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Per-iteration timer handed to the bench closure.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `f` and records it as a sample.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        let out = f();
        self.samples.push(start.elapsed());
        drop(out);
    }
}

/// A named collection of benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples each benchmark takes
    /// (`SCU_BENCH_SAMPLES` overrides the requested count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = sample_override().unwrap_or(n).max(1);
        self
    }

    /// Runs one benchmark: `f` is invoked once per sample with a
    /// [`Bencher`]; each `Bencher::iter` call contributes one sample.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size + 1),
        };
        // Warm-up sample, discarded.
        f(&mut b);
        b.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        report(&full, &b.samples);
        self
    }

    /// Ends the group (layout parity with real criterion).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark with default sampling.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("bench");
        g.sample_size(100).bench_function(id, f);
        g.finish();
        self
    }
}

/// The `SCU_BENCH_SAMPLES` override, if set to a positive integer.
fn sample_override() -> Option<usize> {
    std::env::var("SCU_BENCH_SAMPLES")
        .ok()?
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<48} no samples recorded");
        return;
    }
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<48} {:>12} {:>12} {:>12}  ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        samples.len(),
    );
    if let Ok(path) = std::env::var("SCU_BENCH_JSON") {
        if !path.is_empty() {
            let degraded = DEGRADED.load(Ordering::Relaxed);
            if let Err(e) = append_json_line(&path, name, *min, mean, *max, samples.len(), degraded)
            {
                eprintln!("SCU_BENCH_JSON: cannot append to {path}: {e}");
            }
        }
    }
}

/// Appends one benchmark result as a JSON line (the format
/// `bench_gate` consumes). Hand-rolled serialisation: the stub has no
/// serde, and the only string field needs just quote/backslash escapes.
/// The `degraded` tag is emitted only when set, so untagged lines keep
/// their historical byte layout.
fn append_json_line(
    path: &str,
    name: &str,
    min: Duration,
    mean: Duration,
    max: Duration,
    samples: usize,
    degraded: bool,
) -> std::io::Result<()> {
    let escaped: String = name
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            _ => vec![c],
        })
        .collect();
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let tag = if degraded { ",\"degraded\":true" } else { "" };
    writeln!(
        f,
        "{{\"name\":\"{escaped}\",\"min_ns\":{},\"mean_ns\":{},\"max_ns\":{},\"samples\":{samples}{tag}}}",
        min.as_nanos(),
        mean.as_nanos(),
        max.as_nanos(),
    )
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a bench group entry point: `criterion_group!(name, fns...)`
/// defines `fn name()` running each target against a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main()` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            println!(
                "{:<48} {:>12} {:>12} {:>12}",
                "benchmark", "min", "mean", "max"
            );
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_requested_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        let mut calls = 0u32;
        g.sample_size(5).bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        g.finish();
        // 5 samples + 1 warm-up.
        assert_eq!(calls, 6);
    }

    #[test]
    fn benchmark_id_joins_parts() {
        assert_eq!(BenchmarkId::new("algo", 42).into_id(), "algo/42");
    }

    #[test]
    fn json_lines_append_and_escape() {
        let dir = std::env::temp_dir().join(format!("scu-criterion-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.jsonl");
        let p = path.to_str().unwrap();
        append_json_line(
            p,
            "grp/with \"quote\"",
            Duration::from_nanos(10),
            Duration::from_nanos(20),
            Duration::from_nanos(30),
            5,
            false,
        )
        .unwrap();
        append_json_line(
            p,
            "grp/second",
            Duration::from_nanos(1),
            Duration::from_nanos(2),
            Duration::from_nanos(3),
            1,
            false,
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"name\":\"grp/with \\\"quote\\\"\",\"min_ns\":10,\"mean_ns\":20,\"max_ns\":30,\"samples\":5}"
        );
        assert!(lines[1].contains("\"name\":\"grp/second\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn degraded_records_carry_the_tag_and_clean_ones_do_not() {
        let dir = std::env::temp_dir().join(format!("scu-criterion-deg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.jsonl");
        let p = path.to_str().unwrap();
        let ns = Duration::from_nanos(7);
        append_json_line(p, "scale/t4", ns, ns, ns, 3, true).unwrap();
        append_json_line(p, "scale/t1", ns, ns, ns, 3, false).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].ends_with(",\"degraded\":true}"));
        assert!(!lines[1].contains("degraded"), "clean lines stay untagged");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(fmt_duration(Duration::from_nanos(50)), "50 ns");
        assert!(fmt_duration(Duration::from_micros(500)).ends_with("us"));
        assert!(fmt_duration(Duration::from_millis(500)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(20)).ends_with("s"));
    }
}

//! The shared statistics structs carried by trace events.
//!
//! These historically lived next to the models that produce them
//! (`scu_mem::stats`, `scu_gpu::stats`, `scu_core::stats`) and are
//! still re-exported from those paths; they live here so
//! [`crate::event::Event`] can carry them without a dependency cycle.
//! All counters are plain event counts; the energy model in `scu-energy`
//! multiplies them by per-event energies, and the timing models divide
//! byte counts by peak bandwidth. Every stats struct supports
//! [`merge`](CacheStats::merge)-style accumulation so per-phase
//! measurements can be rolled up into per-application totals.

use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Memory-system counters (historically `scu_mem::stats`).

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total accesses (reads + writes).
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (and allocated).
    pub misses: u64,
    /// Write accesses (subset of `accesses`).
    pub writes: u64,
    /// Dirty evictions (write-back traffic toward the next level).
    pub writebacks: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero if there were no accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.writes += other.writes;
        self.writebacks += other.writebacks;
    }

    /// Difference `self - other`, for windowed measurements where
    /// `other` is a snapshot taken at the start of the window.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `other` is not an earlier snapshot of
    /// the same counter stream (any counter would go negative).
    pub fn since(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            accesses: self.accesses - other.accesses,
            hits: self.hits - other.hits,
            misses: self.misses - other.misses,
            writes: self.writes - other.writes,
            writebacks: self.writebacks - other.writebacks,
        }
    }
}

/// DRAM access counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Read bursts serviced.
    pub reads: u64,
    /// Write bursts serviced.
    pub writes: u64,
    /// Accesses that hit an open row.
    pub row_hits: u64,
    /// Accesses that required precharge + activate.
    pub row_misses: u64,
    /// Total bytes transferred on the data bus.
    pub bytes: u64,
    /// Row activations issued.
    pub activations: u64,
}

impl DramStats {
    /// Row-buffer hit rate in `[0, 1]`; zero if there were no accesses.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: &DramStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.bytes += other.bytes;
        self.activations += other.activations;
    }

    /// Difference `self - other` (see [`CacheStats::since`]).
    pub fn since(&self, other: &DramStats) -> DramStats {
        DramStats {
            reads: self.reads - other.reads,
            writes: self.writes - other.writes,
            row_hits: self.row_hits - other.row_hits,
            row_misses: self.row_misses - other.row_misses,
            bytes: self.bytes - other.bytes,
            activations: self.activations - other.activations,
        }
    }
}

/// Combined snapshot of an entire `scu_mem::system::MemorySystem`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryStats {
    /// L2 counters.
    pub l2: CacheStats,
    /// DRAM counters.
    pub dram: DramStats,
}

impl MemoryStats {
    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: &MemoryStats) {
        self.l2.merge(&other.l2);
        self.dram.merge(&other.dram);
    }

    /// Difference `self - other` (see [`CacheStats::since`]).
    pub fn since(&self, other: &MemoryStats) -> MemoryStats {
        MemoryStats {
            l2: self.l2.since(&other.l2),
            dram: self.dram.since(&other.dram),
        }
    }
}

// ---------------------------------------------------------------------------
// GPU kernel counters (historically `scu_gpu::stats`).

/// The individual lower bounds whose maximum is the kernel time.
///
/// Each field answers "how long would this kernel take if only this
/// resource constrained it?" — the roofline model takes the max.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeBounds {
    /// Instruction issue throughput across SMs, ns.
    pub compute_ns: f64,
    /// L1 transaction throughput (1 line/cycle/SM), ns.
    pub l1_ns: f64,
    /// Shared L2 bandwidth + DRAM service time, ns.
    pub memory_ns: f64,
    /// Total memory latency divided by warp-level parallelism, ns.
    pub latency_ns: f64,
    /// Same-address atomic serialisation, ns.
    pub atomic_ns: f64,
}

impl TimeBounds {
    /// The binding constraint — the kernel-time estimate.
    pub fn max_ns(&self) -> f64 {
        self.compute_ns
            .max(self.l1_ns)
            .max(self.memory_ns)
            .max(self.latency_ns)
            .max(self.atomic_ns)
    }

    /// Name of the binding constraint (for reports).
    pub fn binding(&self) -> &'static str {
        let m = self.max_ns();
        if m == self.compute_ns {
            "compute"
        } else if m == self.l1_ns {
            "l1"
        } else if m == self.memory_ns {
            "memory"
        } else if m == self.latency_ns {
            "latency"
        } else {
            "atomic"
        }
    }

    /// Component-wise sum, for accumulating per-launch bounds into an
    /// application profile.
    pub fn merge(&mut self, other: &TimeBounds) {
        self.compute_ns += other.compute_ns;
        self.l1_ns += other.l1_ns;
        self.memory_ns += other.memory_ns;
        self.latency_ns += other.latency_ns;
        self.atomic_ns += other.atomic_ns;
    }
}

/// Statistics of one kernel launch (or, after
/// [`KernelStats::merge`], of a sequence of launches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Number of launches accumulated (1 for a single launch).
    pub launches: u64,
    /// Threads launched.
    pub threads: u64,
    /// Warps launched.
    pub warps: u64,
    /// Dynamic per-thread instructions (ALU + memory + atomic). This is
    /// the metric behind the paper's "GPU instructions reduced by >70%".
    pub thread_insts: u64,
    /// Warp-level issue slots (divergence-inclusive).
    pub warp_slots: u64,
    /// Warp-level memory instructions.
    pub mem_slots: u64,
    /// Coalesced line transactions issued by all warps.
    pub transactions: u64,
    /// Per-thread loads.
    pub loads: u64,
    /// Per-thread stores.
    pub stores: u64,
    /// Per-thread atomics.
    pub atomics: u64,
    /// L1 counters for this window (all SMs summed).
    pub l1: CacheStats,
    /// L2 + DRAM counters for this window.
    pub mem: MemoryStats,
    /// The time-bound breakdown.
    pub bounds: TimeBounds,
    /// Estimated execution time, ns (max of bounds per launch, summed
    /// across merged launches).
    pub time_ns: f64,
}

impl KernelStats {
    /// Average line transactions per warp memory instruction — the
    /// memory-divergence metric (1.0 = perfectly coalesced, up to 32).
    pub fn transactions_per_mem_slot(&self) -> f64 {
        if self.mem_slots == 0 {
            0.0
        } else {
            self.transactions as f64 / self.mem_slots as f64
        }
    }

    /// Accumulates another launch's statistics into this one.
    ///
    /// `time_ns` adds (launches are sequential); counters sum.
    pub fn merge(&mut self, other: &KernelStats) {
        self.launches += other.launches;
        self.threads += other.threads;
        self.warps += other.warps;
        self.thread_insts += other.thread_insts;
        self.warp_slots += other.warp_slots;
        self.mem_slots += other.mem_slots;
        self.transactions += other.transactions;
        self.loads += other.loads;
        self.stores += other.stores;
        self.atomics += other.atomics;
        self.l1.merge(&other.l1);
        self.mem.merge(&other.mem);
        self.bounds.merge(&other.bounds);
        self.time_ns += other.time_ns;
    }
}

// ---------------------------------------------------------------------------
// SCU operation counters (historically `scu_core::stats`).

/// Which of the five SCU operations (Figure 6) — or enhanced pass — an
/// [`ScuOpStats`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Bitmask Constructor: compare stream against a reference value.
    BitmaskConstructor,
    /// Data Compaction: sequential data + bitmask → compacted data.
    DataCompaction,
    /// Access Compaction: index vector + bitmask → gathered data.
    AccessCompaction,
    /// Replication Compaction: data + count vector → replicated data.
    ReplicationCompaction,
    /// Access Expansion Compaction: indexes + counts → gathered ranges.
    AccessExpansionCompaction,
    /// Enhanced-SCU step 1 producing a filtering bitmask (§4.2).
    FilterPass,
    /// Enhanced-SCU step 1 producing a grouping reorder vector (§4.3).
    GroupPass,
}

impl OpKind {
    /// Short lower-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::BitmaskConstructor => "bitmask",
            OpKind::DataCompaction => "data-compaction",
            OpKind::AccessCompaction => "access-compaction",
            OpKind::ReplicationCompaction => "replication-compaction",
            OpKind::AccessExpansionCompaction => "access-expansion",
            OpKind::FilterPass => "filter-pass",
            OpKind::GroupPass => "group-pass",
        }
    }
}

/// The individual lower bounds whose max is one operation's time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ScuBounds {
    /// Pipeline throughput (`setup + slots / width` cycles), ns.
    pub pipeline_ns: f64,
    /// L2 bandwidth + DRAM service time of the op's traffic, ns.
    pub memory_ns: f64,
    /// Total miss latency divided by the in-flight request budget, ns.
    pub latency_ns: f64,
}

impl ScuBounds {
    /// The binding constraint, ns.
    pub fn max_ns(&self) -> f64 {
        self.pipeline_ns.max(self.memory_ns).max(self.latency_ns)
    }

    /// Component-wise accumulation.
    pub fn merge(&mut self, other: &ScuBounds) {
        self.pipeline_ns += other.pipeline_ns;
        self.memory_ns += other.memory_ns;
        self.latency_ns += other.latency_ns;
    }
}

/// Statistics of one SCU operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScuOpStats {
    /// Operation kind.
    pub op: OpKind,
    /// Control-stream entries consumed (bitmask/index/count slots).
    pub control_elements: u64,
    /// Data elements that flowed through the pipeline.
    pub data_elements: u64,
    /// Flagged-out elements skipped by the bitmask scanner (cost a
    /// fraction of a pipeline slot and no gather traffic).
    pub skipped_elements: u64,
    /// Elements written to the destination.
    pub elements_out: u64,
    /// Pipeline cycles charged.
    pub scu_cycles: u64,
    /// Memory requests issued after coalescing.
    pub requests_issued: u64,
    /// Memory requests merged away by the coalescing units.
    pub requests_merged: u64,
    /// L2/DRAM traffic attributable to this operation.
    pub mem: MemoryStats,
    /// Time-bound breakdown.
    pub bounds: ScuBounds,
    /// Estimated operation time, ns.
    pub time_ns: f64,
}

impl ScuOpStats {
    /// Creates an empty record of the given kind.
    pub fn new(op: OpKind) -> Self {
        ScuOpStats {
            op,
            control_elements: 0,
            data_elements: 0,
            skipped_elements: 0,
            elements_out: 0,
            scu_cycles: 0,
            requests_issued: 0,
            requests_merged: 0,
            mem: MemoryStats::default(),
            bounds: ScuBounds::default(),
            time_ns: 0.0,
        }
    }
}

/// Filtering-effectiveness counters (§4.2 / §6.3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterStats {
    /// Elements probed.
    pub probes: u64,
    /// Elements kept (first occurrences or cost improvements).
    pub kept: u64,
    /// Duplicates dropped.
    pub dropped: u64,
    /// Hash-collision evictions (a different ID overwrote an entry —
    /// these are the source of filtering false negatives).
    pub evictions: u64,
}

impl FilterStats {
    /// Fraction of the input stream removed, in `[0, 1]`.
    pub fn drop_rate(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.dropped as f64 / self.probes as f64
        }
    }

    /// Accumulates another window.
    pub fn merge(&mut self, other: &FilterStats) {
        self.probes += other.probes;
        self.kept += other.kept;
        self.dropped += other.dropped;
        self.evictions += other.evictions;
    }
}

/// Grouping-effectiveness counters (§4.3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupStats {
    /// Elements processed.
    pub elements: u64,
    /// Groups emitted (evictions plus final flush).
    pub groups: u64,
    /// Elements that joined an existing resident group.
    pub joined: u64,
}

impl GroupStats {
    /// Mean emitted group size (1.0 means grouping found no locality).
    pub fn mean_group_size(&self) -> f64 {
        if self.groups == 0 {
            0.0
        } else {
            self.elements as f64 / self.groups as f64
        }
    }

    /// Accumulates another window.
    pub fn merge(&mut self, other: &GroupStats) {
        self.elements += other.elements;
        self.groups += other.groups;
        self.joined += other.joined;
    }
}

/// Accumulated statistics of one `scu_core::device::ScuDevice`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ScuStats {
    /// Operations executed.
    pub ops: u64,
    /// Total pipeline cycles.
    pub scu_cycles: u64,
    /// Total estimated busy time, ns.
    pub time_ns: f64,
    /// Total control-stream elements.
    pub control_elements: u64,
    /// Total data elements through the pipeline.
    pub data_elements: u64,
    /// Total flagged-out elements skipped by the bitmask scanner.
    pub skipped_elements: u64,
    /// Total elements written.
    pub elements_out: u64,
    /// Total issued memory requests.
    pub requests_issued: u64,
    /// Total merged memory requests.
    pub requests_merged: u64,
    /// Memory traffic attributable to the SCU.
    pub mem: MemoryStats,
    /// Accumulated time-bound breakdown.
    pub bounds: ScuBounds,
    /// Filtering effectiveness.
    pub filter: FilterStats,
    /// Grouping effectiveness.
    pub group: GroupStats,
}

impl ScuStats {
    /// Folds one operation's record into the device totals.
    pub fn absorb(&mut self, op: &ScuOpStats) {
        self.ops += 1;
        self.scu_cycles += op.scu_cycles;
        self.time_ns += op.time_ns;
        self.control_elements += op.control_elements;
        self.data_elements += op.data_elements;
        self.skipped_elements += op.skipped_elements;
        self.elements_out += op.elements_out;
        self.requests_issued += op.requests_issued;
        self.requests_merged += op.requests_merged;
        self.mem.merge(&op.mem);
        self.bounds.merge(&op.bounds);
    }

    /// Accumulates another device's totals (e.g. across phases).
    pub fn merge(&mut self, other: &ScuStats) {
        self.ops += other.ops;
        self.scu_cycles += other.scu_cycles;
        self.time_ns += other.time_ns;
        self.control_elements += other.control_elements;
        self.data_elements += other.data_elements;
        self.skipped_elements += other.skipped_elements;
        self.elements_out += other.elements_out;
        self.requests_issued += other.requests_issued;
        self.requests_merged += other.requests_merged;
        self.mem.merge(&other.mem);
        self.bounds.merge(&other.bounds);
        self.filter.merge(&other.filter);
        self.group.merge(&other.group);
    }
}

// ---------------------------------------------------------------------------
// Phase classification (historically `scu_algos::report`).

/// How a GPU kernel launch is classified for the Figure 1 breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Graph processing proper (expansion setup, contraction marking,
    /// rank updates, ...).
    Processing,
    /// Stream compaction work (scan, gather, scatter) — the work the
    /// SCU absorbs.
    Compaction,
}

//! chrome://tracing (Trace Event Format) export — the files Perfetto
//! and `chrome://tracing` load.
//!
//! Each run becomes one process; inside it, iterations, phases, GPU
//! kernels, SCU operations and memory windows render on separate
//! tracks. Timestamps are the timeline's virtual nanoseconds converted
//! to the format's microseconds. Four event categories are emitted:
//! `phase` (iteration + phase spans), `kernel`, `scu-op` and `memory`.

use serde_json::Value;

use crate::event::Event;
use crate::record::Timeline;
use crate::stats::Phase;

const TID_ITER: u64 = 0;
const TID_PHASE: u64 = 1;
const TID_KERNEL: u64 = 2;
const TID_SCU: u64 = 3;
const TID_MEM: u64 = 4;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn us(t_ns: f64) -> Value {
    Value::F64(t_ns / 1000.0)
}

fn span(name: &str, cat: &str, pid: u64, tid: u64, t_ns: f64, dur_ns: f64, args: Value) -> Value {
    obj(vec![
        ("name", Value::Str(name.to_string())),
        ("cat", Value::Str(cat.to_string())),
        ("ph", Value::Str("X".to_string())),
        ("ts", us(t_ns)),
        ("dur", us(dur_ns)),
        ("pid", Value::U64(pid)),
        ("tid", Value::U64(tid)),
        ("args", args),
    ])
}

fn instant(name: &str, cat: &str, pid: u64, tid: u64, t_ns: f64, args: Value) -> Value {
    obj(vec![
        ("name", Value::Str(name.to_string())),
        ("cat", Value::Str(cat.to_string())),
        ("ph", Value::Str("i".to_string())),
        ("ts", us(t_ns)),
        ("s", Value::Str("t".to_string())),
        ("pid", Value::U64(pid)),
        ("tid", Value::U64(tid)),
        ("args", args),
    ])
}

fn metadata(kind: &str, pid: u64, tid: Option<u64>, label: &str) -> Value {
    let mut entries = vec![
        ("name", Value::Str(kind.to_string())),
        ("ph", Value::Str("M".to_string())),
        ("pid", Value::U64(pid)),
    ];
    if let Some(tid) = tid {
        entries.push(("tid", Value::U64(tid)));
    }
    entries.push(("args", obj(vec![("name", Value::Str(label.to_string()))])));
    obj(entries)
}

fn phase_name(phase: Phase) -> &'static str {
    match phase {
        Phase::Processing => "processing",
        Phase::Compaction => "compaction",
    }
}

/// Renders one timeline as Trace Event Format entries under process
/// `pid` (thread-name metadata included; process naming is left to the
/// caller, who knows the cell label).
pub fn chrome_trace_events(timeline: &Timeline, pid: u64) -> Vec<Value> {
    let mut out = vec![
        metadata("thread_name", pid, Some(TID_ITER), "iterations"),
        metadata("thread_name", pid, Some(TID_PHASE), "phases"),
        metadata("thread_name", pid, Some(TID_KERNEL), "gpu kernels"),
        metadata("thread_name", pid, Some(TID_SCU), "scu ops"),
        metadata("thread_name", pid, Some(TID_MEM), "memory"),
    ];
    let mut phase_starts: Vec<(Phase, f64)> = Vec::new();
    let mut iter_starts: Vec<(u32, f64)> = Vec::new();
    for te in &timeline.events {
        match &te.event {
            Event::PhaseBegin { phase } => phase_starts.push((*phase, te.t_ns)),
            Event::PhaseEnd { phase } => {
                let t0 = phase_starts.pop().map(|(_, t)| t).unwrap_or(te.t_ns);
                out.push(span(
                    phase_name(*phase),
                    "phase",
                    pid,
                    TID_PHASE,
                    t0,
                    te.t_ns - t0,
                    obj(vec![("iter", Value::U64(u64::from(te.iter)))]),
                ));
            }
            Event::IterBegin { iter } => iter_starts.push((*iter, te.t_ns)),
            Event::IterEnd { iter } => {
                let t0 = iter_starts.pop().map(|(_, t)| t).unwrap_or(te.t_ns);
                out.push(span(
                    &format!("iter {iter}"),
                    "phase",
                    pid,
                    TID_ITER,
                    t0,
                    te.t_ns - t0,
                    obj(vec![]),
                ));
            }
            Event::KernelLaunched { .. } => {}
            Event::KernelRetired { name, stats } => out.push(span(
                name,
                "kernel",
                pid,
                TID_KERNEL,
                te.t_ns,
                stats.time_ns,
                obj(vec![
                    ("threads", Value::U64(stats.threads)),
                    ("thread_insts", Value::U64(stats.thread_insts)),
                    ("transactions", Value::U64(stats.transactions)),
                    ("bound", Value::Str(stats.bounds.binding().to_string())),
                ]),
            )),
            Event::ScuOpRetired { op, filter, group } => out.push(span(
                op.op.name(),
                "scu-op",
                pid,
                TID_SCU,
                te.t_ns,
                op.time_ns,
                obj(vec![
                    ("data_elements", Value::U64(op.data_elements)),
                    ("elements_out", Value::U64(op.elements_out)),
                    ("requests_issued", Value::U64(op.requests_issued)),
                    ("filter_dropped", Value::U64(filter.dropped)),
                    ("groups", Value::U64(group.groups)),
                ]),
            )),
            Event::MemWindow { source, stats } => out.push(instant(
                &format!("mem:{}", source.name()),
                "memory",
                pid,
                TID_MEM,
                te.t_ns,
                obj(vec![
                    ("l2_hits", Value::U64(stats.l2.hits)),
                    ("l2_accesses", Value::U64(stats.l2.accesses)),
                    ("dram_bytes", Value::U64(stats.dram.bytes)),
                    ("row_hits", Value::U64(stats.dram.row_hits)),
                ]),
            )),
            Event::MemAccess {
                addr,
                write,
                l2_hit,
            } => out.push(instant(
                "access",
                "memory",
                pid,
                TID_MEM,
                te.t_ns,
                obj(vec![
                    ("addr", Value::U64(*addr)),
                    ("write", Value::Bool(*write)),
                    ("l2_hit", Value::Bool(*l2_hit)),
                ]),
            )),
        }
    }
    out
}

/// Builds a complete Trace Event Format document from labelled
/// timelines — one process per timeline, named by its label (e.g. the
/// matrix cell id).
pub fn chrome_trace_document(timelines: &[(String, Timeline)]) -> Value {
    let mut events = Vec::new();
    for (pid, (label, timeline)) in timelines.iter().enumerate() {
        let pid = pid as u64;
        events.push(metadata("process_name", pid, None, label));
        events.extend(chrome_trace_events(timeline, pid));
    }
    obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::Str("ns".to_string())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::TraceSink;
    use crate::record::RecordingSink;
    use crate::stats::KernelStats;

    fn sample() -> Timeline {
        let mut sink = RecordingSink::new("bfs", true);
        sink.emit(Event::IterBegin { iter: 1 });
        sink.emit(Event::PhaseBegin {
            phase: Phase::Processing,
        });
        sink.emit(Event::KernelRetired {
            name: "expand".to_string(),
            stats: Box::new(KernelStats {
                launches: 1,
                time_ns: 100.0,
                ..KernelStats::default()
            }),
        });
        sink.emit(Event::MemWindow {
            source: crate::event::MemSource::Gpu,
            stats: Box::default(),
        });
        sink.emit(Event::PhaseEnd {
            phase: Phase::Processing,
        });
        sink.emit({
            let op = crate::stats::ScuOpStats::new(crate::stats::OpKind::DataCompaction);
            Event::ScuOpRetired {
                op: Box::new(op),
                filter: crate::stats::FilterStats::default(),
                group: crate::stats::GroupStats::default(),
            }
        });
        sink.emit(Event::IterEnd { iter: 1 });
        sink.finish()
    }

    fn cats(events: &[Value]) -> Vec<String> {
        events
            .iter()
            .filter_map(|e| e.get("cat").and_then(Value::as_str))
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn all_four_categories_render() {
        let events = chrome_trace_events(&sample(), 0);
        let cats = cats(&events);
        for want in ["phase", "kernel", "scu-op", "memory"] {
            assert!(cats.iter().any(|c| c == want), "missing category {want}");
        }
    }

    #[test]
    fn spans_convert_ns_to_us() {
        let events = chrome_trace_events(&sample(), 0);
        let kernel = events
            .iter()
            .find(|e| e.get("cat").and_then(Value::as_str) == Some("kernel"))
            .unwrap();
        assert_eq!(kernel.get("dur").and_then(Value::as_f64), Some(0.1));
        assert_eq!(kernel.get("ph").and_then(Value::as_str), Some("X"));
    }

    #[test]
    fn document_names_processes_by_label() {
        let doc = chrome_trace_document(&[("BFS/cond/tx1".to_string(), sample())]);
        let events = doc.get("traceEvents").and_then(Value::as_array).unwrap();
        let proc_name = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("process_name"))
            .unwrap();
        assert_eq!(
            proc_name
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str),
            Some("BFS/cond/tx1")
        );
    }
}

//! # scu-trace — the unified trace/event spine
//!
//! Every layer of the simulator — [`MemorySystem`](stats::MemoryStats)
//! traffic, GPU kernel launches, SCU operations, and the algorithms'
//! phase structure — emits structured [`event::Event`]s through a
//! [`probe::Probe`] into a [`probe::TraceSink`]. A finished run yields a
//! [`record::Timeline`], and *everything downstream is a derived view
//! over it*: `RunReport` aggregation, energy attribution, per-iteration
//! phase breakdowns, and chrome://tracing exports all fold the same
//! event stream, so there is exactly one source of truth for
//! time/energy/byte attribution.
//!
//! The crate sits below `scu-mem` in the dependency order, so the
//! shared statistics structs (`CacheStats`, `KernelStats`, `ScuStats`,
//! …) live here and are re-exported from their historical homes
//! (`scu_mem::stats`, `scu_gpu::stats`, `scu_core::stats`) — events can
//! then carry them without a dependency cycle.
//!
//! ## Hot-path cost
//!
//! A detached probe ([`probe::Probe::off`]) is one `Option` check per
//! emission site, and the only per-memory-access site is additionally
//! gated on [`probe::Probe::wants_mem_access`], a cached bool. The
//! `tracing` Criterion bench in `scu-bench` holds this overhead under
//! 2%.
//!
//! ## Example
//!
//! ```
//! use scu_trace::{Event, Phase, PhaseGuard, Probe, RecordingSink};
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! let sink = Rc::new(RefCell::new(RecordingSink::new("bfs", false)));
//! let probe = Probe::new(sink.clone());
//! {
//!     let _phase = PhaseGuard::new(probe.clone(), Phase::Processing);
//!     probe.emit(Event::KernelLaunched { name: "init".into(), threads: 64 });
//! }
//! drop(probe);
//! let timeline = Rc::try_unwrap(sink).unwrap().into_inner().finish();
//! assert_eq!(timeline.events.len(), 3); // begin, launch, end
//! ```

pub mod chrome;
pub mod event;
pub mod guard;
pub mod probe;
pub mod record;
pub mod stats;

pub use chrome::{chrome_trace_document, chrome_trace_events};
pub use event::{Event, MemSource};
pub use guard::{IterGuard, PhaseGuard};
pub use probe::{NullSink, Probe, TraceSink};
pub use record::{PhaseRow, RecordingSink, TimedEvent, Timeline};
pub use stats::{
    CacheStats, DramStats, FilterStats, GroupStats, KernelStats, MemoryStats, OpKind, Phase,
    ScuBounds, ScuOpStats, ScuStats, TimeBounds,
};

//! The recording sink and the finished [`Timeline`] it produces.
//!
//! [`RecordingSink`] timestamps events on a virtual clock that advances
//! by each retired kernel's / SCU op's estimated time — the same
//! serialised execution model `RunReport::total_time_ns` uses (§3: the
//! GPU resumes once the SCU operation concludes). The finished
//! [`Timeline`] is plain `Send` data; every report, table and exporter
//! is a fold over it.

use serde::{Deserialize, Serialize};

use crate::event::Event;
use crate::probe::TraceSink;
use crate::stats::{KernelStats, Phase, ScuStats};

/// One event with its timeline position: virtual timestamp, enclosing
/// iteration (0 = outside the frontier loop) and enclosing phase.
#[derive(Debug, Clone)]
pub struct TimedEvent {
    /// Virtual timestamp, ns from run start.
    pub t_ns: f64,
    /// Enclosing iteration (1-based; 0 = pre-/post-loop work).
    pub iter: u32,
    /// Enclosing phase, if any.
    pub phase: Option<Phase>,
    /// The event itself.
    pub event: Event,
}

/// A [`TraceSink`] that records everything into a [`Timeline`].
#[derive(Debug)]
pub struct RecordingSink {
    algo: &'static str,
    scu_present: bool,
    cur_iter: u32,
    phase_stack: Vec<Phase>,
    clock_ns: f64,
    record_mem_access: bool,
    events: Vec<TimedEvent>,
}

impl RecordingSink {
    /// Creates an empty recording for one algorithm run.
    pub fn new(algo: &'static str, scu_present: bool) -> Self {
        RecordingSink {
            algo,
            scu_present,
            cur_iter: 0,
            phase_stack: Vec::new(),
            clock_ns: 0.0,
            record_mem_access: false,
            events: Vec::new(),
        }
    }

    /// Opts in to per-access [`Event::MemAccess`] events (expensive;
    /// off by default).
    pub fn with_mem_access(mut self, on: bool) -> Self {
        self.record_mem_access = on;
        self
    }

    /// Consumes the sink, yielding the finished timeline.
    pub fn finish(self) -> Timeline {
        Timeline {
            algo: self.algo,
            scu_present: self.scu_present,
            events: self.events,
        }
    }
}

impl TraceSink for RecordingSink {
    fn wants_mem_access(&self) -> bool {
        self.record_mem_access
    }

    fn emit(&mut self, event: Event) {
        // Begin-markers take effect before the event is stamped, so the
        // marker itself carries the scope it opens; end-markers take
        // effect after, so they carry the scope they close.
        match &event {
            Event::IterBegin { iter } => self.cur_iter = *iter,
            Event::PhaseBegin { phase } => self.phase_stack.push(*phase),
            _ => {}
        }
        let advance = match &event {
            Event::KernelRetired { stats, .. } => stats.time_ns,
            Event::ScuOpRetired { op, .. } => op.time_ns,
            _ => 0.0,
        };
        let ends_phase = matches!(event, Event::PhaseEnd { .. });
        let ends_iter = matches!(event, Event::IterEnd { .. });
        self.events.push(TimedEvent {
            t_ns: self.clock_ns,
            iter: self.cur_iter,
            phase: self.phase_stack.last().copied(),
            event,
        });
        self.clock_ns += advance;
        if ends_phase {
            self.phase_stack.pop();
        }
        if ends_iter {
            self.cur_iter = 0;
        }
    }
}

/// One row of [`Timeline::phase_breakdown`]: time attribution of one
/// iteration (row 0 is pre-/post-loop work such as init kernels).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseRow {
    /// Iteration number (0 = outside the frontier loop).
    pub iter: u32,
    /// GPU processing-phase kernel time, ns.
    pub processing_ns: f64,
    /// GPU compaction-phase kernel time, ns.
    pub compaction_ns: f64,
    /// SCU operation time, ns.
    pub scu_ns: f64,
}

/// The finished event stream of one algorithm run — plain data, `Send`,
/// and the single source of truth every report derives from.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// Algorithm name ("bfs", "sssp", …).
    pub algo: &'static str,
    /// Whether an SCU was present.
    pub scu_present: bool,
    /// All recorded events in emission order.
    pub events: Vec<TimedEvent>,
}

impl Timeline {
    /// Folds retired kernels into `(processing, compaction)` totals, in
    /// event order — bit-identical to the pre-spine per-launch
    /// `RunReport::add_kernel` accumulation. Kernels outside any phase
    /// count as processing.
    pub fn kernel_totals(&self) -> (KernelStats, KernelStats) {
        let mut processing = KernelStats::default();
        let mut compaction = KernelStats::default();
        for te in &self.events {
            if let Event::KernelRetired { stats, .. } = &te.event {
                match te.phase.unwrap_or(Phase::Processing) {
                    Phase::Processing => processing.merge(stats),
                    Phase::Compaction => compaction.merge(stats),
                }
            }
        }
        (processing, compaction)
    }

    /// Folds retired SCU operations into device totals, in event order
    /// — the same `absorb` + filter/group window merges the device
    /// performed live, replayed, so f64 sums associate identically.
    pub fn scu_totals(&self) -> ScuStats {
        let mut scu = ScuStats::default();
        for te in &self.events {
            if let Event::ScuOpRetired { op, filter, group } = &te.event {
                scu.absorb(op);
                scu.filter.merge(filter);
                scu.group.merge(group);
            }
        }
        scu
    }

    /// Number of frontier iterations executed (the highest iteration
    /// any event was recorded under).
    pub fn iterations(&self) -> u32 {
        self.events.iter().map(|e| e.iter).max().unwrap_or(0)
    }

    /// Per-iteration time attribution, rows `0..=iterations()` (row 0
    /// collects pre-/post-loop work).
    pub fn phase_breakdown(&self) -> Vec<PhaseRow> {
        let mut rows: Vec<PhaseRow> = (0..=self.iterations())
            .map(|iter| PhaseRow {
                iter,
                ..PhaseRow::default()
            })
            .collect();
        for te in &self.events {
            let row = &mut rows[te.iter as usize];
            match &te.event {
                Event::KernelRetired { stats, .. } => match te.phase.unwrap_or(Phase::Processing) {
                    Phase::Processing => row.processing_ns += stats.time_ns,
                    Phase::Compaction => row.compaction_ns += stats.time_ns,
                },
                Event::ScuOpRetired { op, .. } => row.scu_ns += op.time_ns,
                _ => {}
            }
        }
        rows
    }

    /// Virtual end-of-run timestamp, ns (total serialised device time).
    pub fn span_ns(&self) -> f64 {
        self.events
            .last()
            .map(|te| {
                te.t_ns
                    + match &te.event {
                        Event::KernelRetired { stats, .. } => stats.time_ns,
                        Event::ScuOpRetired { op, .. } => op.time_ns,
                        _ => 0.0,
                    }
            })
            .unwrap_or(0.0)
    }

    /// An order-sensitive FNV-1a digest of the event stream, stable
    /// across processes — the journal cross-checks cached and live runs
    /// on it.
    pub fn digest(&self) -> u64 {
        let mut h = fnv(FNV_OFFSET, self.algo.as_bytes());
        h = fnv_u64(h, u64::from(self.scu_present));
        for te in &self.events {
            h = fnv_u64(h, u64::from(te.event.discriminant()));
            h = fnv_u64(h, u64::from(te.iter));
            h = fnv_u64(
                h,
                match te.phase {
                    None => 0,
                    Some(Phase::Processing) => 1,
                    Some(Phase::Compaction) => 2,
                },
            );
            h = fnv_u64(h, te.t_ns.to_bits());
            match &te.event {
                Event::KernelLaunched { name, threads } => {
                    h = fnv(h, name.as_bytes());
                    h = fnv_u64(h, *threads);
                }
                Event::KernelRetired { name, stats } => {
                    h = fnv(h, name.as_bytes());
                    h = fnv_u64(h, stats.thread_insts);
                    h = fnv_u64(h, stats.time_ns.to_bits());
                }
                Event::ScuOpRetired { op, filter, group } => {
                    h = fnv(h, op.op.name().as_bytes());
                    h = fnv_u64(h, op.elements_out);
                    h = fnv_u64(h, op.time_ns.to_bits());
                    h = fnv_u64(h, filter.dropped);
                    h = fnv_u64(h, group.groups);
                }
                Event::MemWindow { source, stats } => {
                    h = fnv(h, source.name().as_bytes());
                    h = fnv_u64(h, stats.l2.accesses);
                    h = fnv_u64(h, stats.dram.bytes);
                }
                Event::MemAccess {
                    addr,
                    write,
                    l2_hit,
                } => {
                    h = fnv_u64(h, *addr);
                    h = fnv_u64(h, u64::from(*write) << 1 | u64::from(*l2_hit));
                }
                _ => {}
            }
        }
        h
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_u64(h: u64, v: u64) -> u64 {
    fnv(h, &v.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ScuOpStats;

    fn kernel(name: &str, time_ns: f64) -> Event {
        Event::KernelRetired {
            name: name.to_string(),
            stats: Box::new(KernelStats {
                launches: 1,
                time_ns,
                thread_insts: 10,
                ..KernelStats::default()
            }),
        }
    }

    fn scu_op(time_ns: f64) -> Event {
        let mut op = ScuOpStats::new(crate::stats::OpKind::DataCompaction);
        op.time_ns = time_ns;
        op.elements_out = 3;
        Event::ScuOpRetired {
            op: Box::new(op),
            filter: crate::stats::FilterStats::default(),
            group: crate::stats::GroupStats::default(),
        }
    }

    fn record(events: Vec<Event>) -> Timeline {
        let mut sink = RecordingSink::new("test", true);
        for e in events {
            sink.emit(e);
        }
        sink.finish()
    }

    #[test]
    fn clock_advances_on_retirements_only() {
        let tl = record(vec![
            Event::PhaseBegin {
                phase: Phase::Processing,
            },
            kernel("a", 10.0),
            kernel("b", 5.0),
            Event::PhaseEnd {
                phase: Phase::Processing,
            },
            scu_op(7.0),
        ]);
        let ts: Vec<f64> = tl.events.iter().map(|e| e.t_ns).collect();
        assert_eq!(ts, vec![0.0, 0.0, 10.0, 15.0, 15.0]);
        assert_eq!(tl.span_ns(), 22.0);
    }

    #[test]
    fn phase_and_iter_scoping() {
        let tl = record(vec![
            kernel("init", 1.0), // outside any scope
            Event::IterBegin { iter: 1 },
            Event::PhaseBegin {
                phase: Phase::Compaction,
            },
            kernel("scan", 2.0),
            Event::PhaseEnd {
                phase: Phase::Compaction,
            },
            Event::IterEnd { iter: 1 },
            kernel("tail", 1.0),
        ]);
        assert_eq!(tl.events[0].iter, 0);
        assert_eq!(tl.events[0].phase, None);
        assert_eq!(tl.events[3].iter, 1);
        assert_eq!(tl.events[3].phase, Some(Phase::Compaction));
        // End markers carry the scope they close; the next event is out.
        assert_eq!(tl.events[4].phase, Some(Phase::Compaction));
        assert_eq!(tl.events[6].iter, 0);
        assert_eq!(tl.iterations(), 1);
    }

    #[test]
    fn kernel_totals_split_by_phase() {
        let tl = record(vec![
            kernel("init", 1.0), // no phase -> processing
            Event::PhaseBegin {
                phase: Phase::Compaction,
            },
            kernel("scan", 2.0),
            Event::PhaseEnd {
                phase: Phase::Compaction,
            },
        ]);
        let (proc, comp) = tl.kernel_totals();
        assert_eq!(proc.launches, 1);
        assert_eq!(proc.time_ns, 1.0);
        assert_eq!(comp.launches, 1);
        assert_eq!(comp.time_ns, 2.0);
    }

    #[test]
    fn scu_totals_replay_absorb_plus_windows() {
        let filter = crate::stats::FilterStats {
            probes: 8,
            dropped: 5,
            ..Default::default()
        };
        let mut op = ScuOpStats::new(crate::stats::OpKind::FilterPass);
        op.time_ns = 3.0;
        let tl = record(vec![Event::ScuOpRetired {
            op: Box::new(op),
            filter,
            group: crate::stats::GroupStats::default(),
        }]);
        let scu = tl.scu_totals();
        assert_eq!(scu.ops, 1);
        assert_eq!(scu.time_ns, 3.0);
        assert_eq!(scu.filter.probes, 8);
        assert_eq!(scu.filter.dropped, 5);
    }

    #[test]
    fn phase_breakdown_rows_per_iteration() {
        let tl = record(vec![
            kernel("init", 1.0),
            Event::IterBegin { iter: 1 },
            kernel("expand", 4.0),
            Event::PhaseBegin {
                phase: Phase::Compaction,
            },
            scu_op(2.0),
            Event::PhaseEnd {
                phase: Phase::Compaction,
            },
            Event::IterEnd { iter: 1 },
        ]);
        let rows = tl.phase_breakdown();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].processing_ns, 1.0);
        assert_eq!(rows[1].processing_ns, 4.0);
        assert_eq!(rows[1].scu_ns, 2.0);
    }

    #[test]
    fn digest_is_stable_and_order_sensitive() {
        let a = record(vec![kernel("a", 1.0), kernel("b", 2.0)]);
        let b = record(vec![kernel("a", 1.0), kernel("b", 2.0)]);
        let c = record(vec![kernel("b", 2.0), kernel("a", 1.0)]);
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
        assert_ne!(record(vec![]).digest(), 0);
    }
}

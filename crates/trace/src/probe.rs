//! The emission side of the spine: [`Probe`] handles held by every
//! layer, writing into a shared [`TraceSink`].
//!
//! A probe is a cheap cloneable handle. Detached ([`Probe::off`], the
//! default) it is a `None` and every emission site is one branch; when
//! attached, all clones funnel into the same sink. The simulator is
//! single-threaded per run, so the sink is shared via `Rc<RefCell<…>>`
//! rather than locks — the finished [`crate::record::Timeline`] (plain
//! data) is what crosses threads, not the live sink.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::event::Event;

/// A consumer of trace [`Event`]s.
pub trait TraceSink {
    /// Whether the sink wants per-access [`Event::MemAccess`] events.
    ///
    /// These are orders of magnitude more frequent than every other
    /// event class combined, so producers consult
    /// [`Probe::wants_mem_access`] (this answer, cached at attach time)
    /// before constructing one. Defaults to `false`.
    fn wants_mem_access(&self) -> bool {
        false
    }

    /// Consumes one event.
    fn emit(&mut self, event: Event);
}

/// A sink that discards every event — the default when tracing is off
/// and the reference point for the hot-path overhead bench.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&mut self, _event: Event) {}
}

/// A cloneable handle through which a layer emits trace events.
#[derive(Clone, Default)]
pub struct Probe {
    sink: Option<Rc<RefCell<dyn TraceSink>>>,
    mem_access: bool,
}

impl Probe {
    /// A detached probe: every `emit` is a single `None` check.
    pub fn off() -> Self {
        Probe::default()
    }

    /// Attaches a probe to `sink`, caching its
    /// [`TraceSink::wants_mem_access`] answer.
    pub fn new(sink: Rc<RefCell<dyn TraceSink>>) -> Self {
        let mem_access = sink.borrow().wants_mem_access();
        Probe {
            sink: Some(sink),
            mem_access,
        }
    }

    /// Whether a sink is attached.
    pub fn is_on(&self) -> bool {
        self.sink.is_some()
    }

    /// Whether per-access [`Event::MemAccess`] events should be
    /// constructed — the one per-memory-access branch on the hot path.
    pub fn wants_mem_access(&self) -> bool {
        self.mem_access
    }

    /// Emits an already-constructed event (use for cheap payloads).
    pub fn emit(&self, event: Event) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut().emit(event);
        }
    }

    /// Emits the event `f` constructs, calling `f` only when attached —
    /// use when the payload allocates (e.g. a kernel-name `String`).
    pub fn emit_with(&self, f: impl FnOnce() -> Event) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut().emit(f());
        }
    }
}

impl fmt::Debug for Probe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Probe")
            .field("on", &self.is_on())
            .field("mem_access", &self.mem_access)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordingSink;

    #[test]
    fn detached_probe_drops_everything() {
        let p = Probe::off();
        assert!(!p.is_on());
        assert!(!p.wants_mem_access());
        p.emit(Event::IterBegin { iter: 1 });
        p.emit_with(|| panic!("closure must not run when detached"));
    }

    #[test]
    fn attached_probe_routes_to_sink() {
        let sink = Rc::new(RefCell::new(RecordingSink::new("t", false)));
        let p = Probe::new(sink.clone());
        assert!(p.is_on());
        p.emit(Event::IterBegin { iter: 1 });
        p.emit_with(|| Event::IterEnd { iter: 1 });
        drop(p);
        let tl = Rc::try_unwrap(sink).unwrap().into_inner().finish();
        assert_eq!(tl.events.len(), 2);
    }

    #[test]
    fn mem_access_gate_is_cached_from_sink() {
        let quiet = Probe::new(Rc::new(RefCell::new(RecordingSink::new("t", false))));
        assert!(!quiet.wants_mem_access());
        let chatty = Probe::new(Rc::new(RefCell::new(
            RecordingSink::new("t", false).with_mem_access(true),
        )));
        assert!(chatty.wants_mem_access());
    }

    #[test]
    fn null_sink_is_silent() {
        let p = Probe::new(Rc::new(RefCell::new(NullSink)));
        assert!(p.is_on());
        assert!(!p.wants_mem_access());
        p.emit(Event::IterBegin { iter: 1 }); // no panic, nothing stored
    }
}

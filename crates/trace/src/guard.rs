//! RAII scope markers: phases and frontier iterations.
//!
//! Guards hold their own [`Probe`] clone rather than borrowing the
//! emitting layer, so an algorithm can open a phase and still mutate
//! its `System` freely inside the scope.

use crate::event::Event;
use crate::probe::Probe;
use crate::stats::Phase;

/// Marks a [`Phase`] scope: emits [`Event::PhaseBegin`] on creation and
/// [`Event::PhaseEnd`] on drop. Kernels and SCU ops retired inside the
/// scope are attributed to the phase.
#[must_use = "dropping the guard immediately closes the phase"]
#[derive(Debug)]
pub struct PhaseGuard {
    probe: Probe,
    phase: Phase,
}

impl PhaseGuard {
    /// Opens `phase`.
    pub fn new(probe: Probe, phase: Phase) -> Self {
        probe.emit(Event::PhaseBegin { phase });
        PhaseGuard { probe, phase }
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        self.probe.emit(Event::PhaseEnd { phase: self.phase });
    }
}

/// Marks one frontier iteration (1-based): emits [`Event::IterBegin`]
/// on creation and [`Event::IterEnd`] on drop — correct across `break`
/// and `continue` because drop runs on every exit path.
#[must_use = "dropping the guard immediately closes the iteration"]
#[derive(Debug)]
pub struct IterGuard {
    probe: Probe,
    iter: u32,
}

impl IterGuard {
    /// Opens iteration `iter`.
    pub fn new(probe: Probe, iter: u32) -> Self {
        probe.emit(Event::IterBegin { iter });
        IterGuard { probe, iter }
    }
}

impl Drop for IterGuard {
    fn drop(&mut self) {
        self.probe.emit(Event::IterEnd { iter: self.iter });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordingSink;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn guards_balance_on_early_exit() {
        let sink = Rc::new(RefCell::new(RecordingSink::new("t", false)));
        let probe = Probe::new(sink.clone());
        for i in 1..=3u32 {
            let _iter = IterGuard::new(probe.clone(), i);
            let _phase = PhaseGuard::new(probe.clone(), Phase::Processing);
            if i == 2 {
                break; // drops must still emit both end markers
            }
        }
        drop(probe);
        let tl = Rc::try_unwrap(sink).unwrap().into_inner().finish();
        let begins = tl
            .events
            .iter()
            .filter(|e| matches!(e.event, Event::PhaseBegin { .. } | Event::IterBegin { .. }))
            .count();
        let ends = tl
            .events
            .iter()
            .filter(|e| matches!(e.event, Event::PhaseEnd { .. } | Event::IterEnd { .. }))
            .count();
        assert_eq!(begins, 4);
        assert_eq!(ends, begins);
        assert_eq!(tl.iterations(), 2);
    }
}

//! The structured event taxonomy every layer emits.

use crate::stats::{FilterStats, GroupStats, KernelStats, MemoryStats, Phase, ScuOpStats};

/// Which device a memory-traffic window is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemSource {
    /// GPU kernel traffic (L1 misses reaching L2/DRAM).
    Gpu,
    /// SCU operation traffic (stream reads/writes, hash tables).
    Scu,
}

impl MemSource {
    /// Short lower-case name for exporters.
    pub fn name(self) -> &'static str {
        match self {
            MemSource::Gpu => "gpu",
            MemSource::Scu => "scu",
        }
    }
}

/// One structured trace event.
///
/// Large payloads are boxed so the enum stays small — the common
/// variants ([`Event::MemAccess`], the phase/iter markers) are what
/// dominate a recording run.
#[derive(Debug, Clone)]
pub enum Event {
    /// An algorithm phase opened (emitted by
    /// [`crate::guard::PhaseGuard::new`]).
    PhaseBegin {
        /// The phase being entered.
        phase: Phase,
    },
    /// An algorithm phase closed (emitted on guard drop).
    PhaseEnd {
        /// The phase being left.
        phase: Phase,
    },
    /// A frontier iteration opened (1-based; emitted by
    /// [`crate::guard::IterGuard::new`]).
    IterBegin {
        /// The iteration number.
        iter: u32,
    },
    /// A frontier iteration closed.
    IterEnd {
        /// The iteration number.
        iter: u32,
    },
    /// A GPU kernel was launched.
    KernelLaunched {
        /// Kernel name.
        name: String,
        /// Threads launched.
        threads: u64,
    },
    /// A GPU kernel finished; carries its full statistics window.
    KernelRetired {
        /// Kernel name.
        name: String,
        /// The launch's statistics (time, traffic, bounds).
        stats: Box<KernelStats>,
    },
    /// An SCU operation finished; carries its statistics plus the
    /// filtering/grouping effectiveness window of that operation.
    ScuOpRetired {
        /// The operation's statistics.
        op: Box<ScuOpStats>,
        /// Filtering counters accrued during this operation.
        filter: FilterStats,
        /// Grouping counters accrued during this operation.
        group: GroupStats,
    },
    /// Memory-system traffic accrued since the previous window of the
    /// same stream (l2 hits, DRAM bytes, row hits, …).
    MemWindow {
        /// Which device drove the traffic.
        source: MemSource,
        /// The since-last-window counters.
        stats: Box<MemoryStats>,
    },
    /// One L2 access — emitted only when the sink opts in via
    /// [`crate::probe::TraceSink::wants_mem_access`].
    MemAccess {
        /// Byte address accessed.
        addr: u64,
        /// Whether it was a write.
        write: bool,
        /// Whether it hit in L2.
        l2_hit: bool,
    },
}

impl Event {
    /// A stable small integer identifying the variant, used by the
    /// timeline digest.
    pub fn discriminant(&self) -> u8 {
        match self {
            Event::PhaseBegin { .. } => 0,
            Event::PhaseEnd { .. } => 1,
            Event::IterBegin { .. } => 2,
            Event::IterEnd { .. } => 3,
            Event::KernelLaunched { .. } => 4,
            Event::KernelRetired { .. } => 5,
            Event::ScuOpRetired { .. } => 6,
            Event::MemWindow { .. } => 7,
            Event::MemAccess { .. } => 8,
        }
    }
}

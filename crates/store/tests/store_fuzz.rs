//! Property fuzzing of the store's crash and corruption recovery.
//!
//! Three invariants, hammered with random damage:
//!
//! 1. Truncating the WAL anywhere recovers exactly an intact prefix of
//!    the appended records — never a panic, never a partial record.
//! 2. Flipping any byte of the WAL still recovers a (possibly shorter)
//!    intact prefix — corrupt frames never decode to wrong values.
//! 3. Flipping any byte of a segment either fails open (structural
//!    damage) or isolates the damage: every readable address returns
//!    its original record, the damaged one reads as corrupt, and the
//!    whole store above it serves no corrupt value.

use proptest::prelude::*;
use scu_store::lsm::{LsmOptions, LsmStore};
use scu_store::record::{JournalRecord, Record, RecordKind};
use scu_store::segment::Segment;
use scu_store::wal::{Wal, WAL_MAGIC};
use scu_store::{GetResult, ResultStore};
use serde_json::Value;
use std::path::{Path, PathBuf};

fn scratch(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "scu-store-fuzz-{}-{tag}-{case}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn put(n: u64) -> Record {
    Record {
        kind: RecordKind::Put,
        epoch: 1,
        rk: format!("key:{{\"cell\":{n}}}"),
        id: format!("cell-{n}"),
        digest: Some(n * 7 + 1),
        value: format!("{{\"out\":{n}}}").into_bytes(),
    }
}

fn key(n: u64) -> Value {
    Value::Object(vec![("cell".into(), Value::U64(n))])
}

fn wal_with(dir: &Path, count: u64) -> Vec<u8> {
    let path = dir.join("wal.log");
    let (wal, _) = Wal::open(&path, &dir.join("q"), 8).unwrap();
    for n in 0..count {
        wal.append(&put(n)).unwrap();
    }
    drop(wal);
    std::fs::read(&path).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn truncated_wal_recovers_an_intact_prefix(
        count in 1u64..8,
        cut_frac in 0u32..1000,
    ) {
        let dir = scratch("cut", count * 1000 + cut_frac as u64);
        let full = wal_with(&dir, count);
        let cut = WAL_MAGIC.len()
            + ((full.len() - WAL_MAGIC.len()) * cut_frac as usize) / 1000;
        std::fs::write(dir.join("wal.log"), &full[..cut]).unwrap();
        let (_, rec) = Wal::open(&dir.join("wal.log"), &dir.join("q"), 8).unwrap();
        prop_assert!(rec.records.len() as u64 <= count);
        for (i, r) in rec.records.iter().enumerate() {
            prop_assert_eq!(r, &put(i as u64), "prefix must be byte-exact");
        }
        // The cut bytes were physically removed: reopening is clean.
        let (_, again) = Wal::open(&dir.join("wal.log"), &dir.join("q"), 8).unwrap();
        prop_assert_eq!(again.truncated_tail_bytes, 0);
        prop_assert_eq!(again.records.len(), rec.records.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_wal_byte_never_yields_a_wrong_record(
        count in 1u64..6,
        pos_frac in 0u32..1000,
        mask in 1u8..=255,
    ) {
        let dir = scratch("flip", count * 1000 + pos_frac as u64);
        let mut bytes = wal_with(&dir, count);
        let pos = (bytes.len() - 1) * pos_frac as usize / 1000;
        bytes[pos] ^= mask;
        std::fs::write(dir.join("wal.log"), &bytes).unwrap();
        let (_, rec) = Wal::open(&dir.join("wal.log"), &dir.join("q"), 8).unwrap();
        // A flip inside the magic quarantines the file (empty replay);
        // anywhere else the replay stops at the damaged frame. Either
        // way: an intact prefix, nothing invented.
        prop_assert!(rec.records.len() as u64 <= count);
        for (i, r) in rec.records.iter().enumerate() {
            prop_assert_eq!(r, &put(i as u64), "no corrupt record may surface");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_segment_byte_is_detected_or_isolated(
        count in 2u64..10,
        pos_frac in 0u32..1000,
        mask in 1u8..=255,
    ) {
        let dir = scratch("seg", count * 1000 + pos_frac as u64);
        let path = dir.join("seg-000001.seg");
        let mut records: Vec<_> = (0..count)
            .map(|n| {
                let rec = put(n);
                (scu_store::stable_addr(rec.rk.as_bytes()), rec)
            })
            .collect();
        Segment::write(&path, &mut records).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = (bytes.len() - 1) * pos_frac as usize / 1000;
        bytes[pos] ^= mask;
        std::fs::write(&path, &bytes).unwrap();
        match Segment::open(&path) {
            // Structural damage: the whole file is refused, which the
            // store turns into quarantine-and-rebuild. Nothing to read.
            Err(_) => {}
            Ok(seg) => {
                let mut damaged = 0;
                for n in 0..count {
                    let rec = put(n);
                    let addr = scu_store::stable_addr(rec.rk.as_bytes());
                    match seg.get(addr) {
                        Some(Ok(read)) => prop_assert_eq!(read, rec, "cell {}", n),
                        Some(Err(_)) => damaged += 1,
                        None => prop_assert!(false, "index lost cell {n}"),
                    }
                }
                prop_assert!(damaged <= 1, "one flipped byte damages at most one record");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_reopen_after_random_wal_damage_serves_no_corrupt_value(
        cells in 3u64..12,
        cut_frac in 0u32..1000,
    ) {
        let dir = scratch("store", cells * 1000 + cut_frac as u64);
        let opts = LsmOptions {
            flush_records: 5,
            compact_min_segments: 100, // keep compaction out of this test
            quarantine_cap: 8,
        };
        {
            let store = LsmStore::open_with(&dir, opts.clone()).unwrap();
            store.begin_sweep(false).unwrap();
            for n in 0..cells {
                store
                    .journal_append(&JournalRecord {
                        key: Some(key(n)),
                        id: format!("cell-{n}"),
                        value: Value::U64(n * 10),
                        digest: Some(n),
                    })
                    .unwrap();
            }
        }
        // Tear the WAL at a random point (segments stay intact).
        let wal_path = dir.join("wal.log");
        let bytes = std::fs::read(&wal_path).unwrap();
        let cut = WAL_MAGIC.len().max(bytes.len() * cut_frac as usize / 1000);
        std::fs::write(&wal_path, &bytes[..cut]).unwrap();

        let store = LsmStore::open_with(&dir, opts).unwrap();
        let state = store.resume_state().unwrap();
        prop_assert!(state.values.len() as u64 <= cells);
        for (rk, value) in &state.values {
            // Every resumed value must be exactly what was journaled.
            let n: u64 = rk
                .trim_start_matches("key:{\"cell\":")
                .trim_end_matches('}')
                .parse()
                .unwrap();
            prop_assert_eq!(value, &Value::U64(n * 10), "rk {}", rk);
        }
        // Cache reads agree: hit with the true value or miss, never junk.
        for n in 0..cells {
            match store.get(&key(n)) {
                GetResult::Hit(v) => prop_assert_eq!(v, Value::U64(n * 10)),
                GetResult::Miss => {}
                GetResult::Corrupt => prop_assert!(false, "tearing the WAL is not corruption"),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Immutable, checksummed, memory-mapped segment files.
//!
//! A segment is a flushed batch of WAL records, merged one-per-address
//! and sorted, so point reads are a binary search over a fixed-width
//! index plus one frame decode — no parsing of anything but the record
//! actually asked for. Layout:
//!
//! ```text
//! [8  "SCUSEG01"][u32le count][u32le reserved]
//! count × frame                      (see crate::record)
//! count × [u128le addr][u64le off]   (sorted by addr)
//! [u64le index_off][u32le count][u32le crc32(index)][8 "SCUSEGIX"]
//! ```
//!
//! Corruption handling is two-tier: a broken header, footer or index
//! makes the whole file untrustworthy ([`Segment::open`] errors and
//! the store quarantines the file); a broken *record* is isolated by
//! its own CRC — the one address is poisoned and quarantined, every
//! other record in the segment stays readable.

use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::mmap::Mapped;
use crate::record::{read_frame, write_frame, Record};

/// Leading magic.
pub const SEG_MAGIC: &[u8; 8] = b"SCUSEG01";
/// Trailing magic.
pub const SEG_FOOTER_MAGIC: &[u8; 8] = b"SCUSEGIX";

const HEADER_LEN: usize = 16;
const INDEX_ENTRY: usize = 24;
const FOOTER_LEN: usize = 24;

/// An open segment: mapped bytes plus the validated index geometry.
#[derive(Debug)]
pub struct Segment {
    path: PathBuf,
    map: Mapped,
    index_off: usize,
    count: usize,
}

fn corrupt(reason: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, reason.into())
}

impl Segment {
    /// Writes `records` (pre-merged, one per address) as a segment at
    /// `path`, atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// Returns write/rename failures.
    pub fn write(path: &Path, records: &mut [(u128, Record)]) -> io::Result<()> {
        records.sort_by_key(|(addr, _)| *addr);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SEG_MAGIC);
        bytes.extend_from_slice(&(records.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let mut index = Vec::with_capacity(records.len() * INDEX_ENTRY);
        for (addr, rec) in records.iter() {
            index.extend_from_slice(&addr.to_le_bytes());
            index.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
            write_frame(&mut bytes, &rec.encode_body());
        }
        let index_off = bytes.len();
        bytes.extend_from_slice(&index);
        bytes.extend_from_slice(&(index_off as u64).to_le_bytes());
        bytes.extend_from_slice(&(records.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&index).to_le_bytes());
        bytes.extend_from_slice(SEG_FOOTER_MAGIC);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Opens and structurally validates the segment at `path`.
    ///
    /// # Errors
    ///
    /// `InvalidData` for any header/footer/index violation — the
    /// caller treats the whole file as corrupt — and plain IO errors
    /// for filesystem failures.
    pub fn open(path: &Path) -> io::Result<Segment> {
        let mut file = std::fs::File::open(path)?;
        let map = Mapped::of_file(&mut file)?;
        let len = map.len();
        if len < HEADER_LEN + FOOTER_LEN {
            return Err(corrupt("segment shorter than header + footer"));
        }
        if &map[..8] != SEG_MAGIC {
            return Err(corrupt("bad segment magic"));
        }
        let footer = &map[len - FOOTER_LEN..];
        if &footer[16..] != SEG_FOOTER_MAGIC {
            return Err(corrupt("bad segment footer magic"));
        }
        let head_count = u32::from_le_bytes(map[8..12].try_into().unwrap()) as usize;
        let index_off = u64::from_le_bytes(footer[..8].try_into().unwrap()) as usize;
        let foot_count = u32::from_le_bytes(footer[8..12].try_into().unwrap()) as usize;
        let index_crc = u32::from_le_bytes(footer[12..16].try_into().unwrap());
        if head_count != foot_count {
            return Err(corrupt("header/footer record counts disagree"));
        }
        let index_end = index_off
            .checked_add(
                head_count
                    .checked_mul(INDEX_ENTRY)
                    .ok_or_else(|| corrupt("index size overflows"))?,
            )
            .ok_or_else(|| corrupt("index size overflows"))?;
        if index_off < HEADER_LEN || index_end != len - FOOTER_LEN {
            return Err(corrupt("index does not span header..footer"));
        }
        if crc32(&map[index_off..index_end]) != index_crc {
            return Err(corrupt("index checksum mismatch"));
        }
        Ok(Segment {
            path: path.to_path_buf(),
            map,
            index_off,
            count: head_count,
        })
    }

    /// The file this segment maps.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the segment holds no records.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    fn index_entry(&self, i: usize) -> (u128, usize) {
        let at = self.index_off + i * INDEX_ENTRY;
        let addr = u128::from_le_bytes(self.map[at..at + 16].try_into().unwrap());
        let off = u64::from_le_bytes(self.map[at + 16..at + 24].try_into().unwrap()) as usize;
        (addr, off)
    }

    fn decode_at(&self, off: usize) -> Result<Record, String> {
        let frames = &self.map[..self.index_off];
        match read_frame(frames, off) {
            Ok((body, _)) => Record::decode_body(body),
            Err(e) => Err(format!("{e:?} frame")),
        }
    }

    /// Binary-searches for `addr`. `None` when absent; `Some(Err)`
    /// when the record is present but corrupt (the caller poisons the
    /// address and quarantines the bytes).
    pub fn get(&self, addr: u128) -> Option<Result<Record, String>> {
        let mut lo = 0usize;
        let mut hi = self.count;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let (mid_addr, off) = self.index_entry(mid);
            match mid_addr.cmp(&addr) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(self.decode_at(off)),
            }
        }
        None
    }

    /// All records in address order, each individually validated.
    pub fn iter(&self) -> impl Iterator<Item = (u128, Result<Record, String>)> + '_ {
        (0..self.count).map(|i| {
            let (addr, off) = self.index_entry(i);
            (addr, self.decode_at(off))
        })
    }

    /// The raw frame bytes behind `addr`, for quarantining a corrupt
    /// record without copying the whole segment.
    pub fn raw_frame(&self, addr: u128) -> Option<&[u8]> {
        let mut lo = 0usize;
        let mut hi = self.count;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let (mid_addr, off) = self.index_entry(mid);
            match mid_addr.cmp(&addr) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    let next = (0..self.count)
                        .map(|i| self.index_entry(i).1)
                        .filter(|&o| o > off)
                        .min()
                        .unwrap_or(self.index_off);
                    return self.map.get(off..next);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::stable_addr;
    use crate::record::RecordKind;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("scu-store-seg-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn put(n: u64) -> (u128, Record) {
        let rk = format!("key:{{\"cell\":{n}}}");
        let rec = Record {
            kind: RecordKind::Put,
            epoch: 1,
            rk: rk.clone(),
            id: format!("cell-{n}"),
            digest: Some(n),
            value: format!("{{\"v\":{n}}}").into_bytes(),
        };
        (stable_addr(rk.as_bytes()), rec)
    }

    fn build(dir: &Path, n: u64) -> Segment {
        let path = dir.join("seg-000001.seg");
        let mut records: Vec<_> = (0..n).map(put).collect();
        Segment::write(&path, &mut records).unwrap();
        Segment::open(&path).unwrap()
    }

    #[test]
    fn point_reads_find_every_record() {
        let dir = scratch("reads");
        let seg = build(&dir, 100);
        assert_eq!(seg.len(), 100);
        for n in 0..100 {
            let (addr, expect) = put(n);
            assert_eq!(seg.get(addr).unwrap().unwrap(), expect);
        }
        let (absent, _) = put(100_000);
        assert!(seg.get(absent).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn iteration_yields_all_records_sorted() {
        let dir = scratch("iter");
        let seg = build(&dir, 32);
        let addrs: Vec<u128> = seg.iter().map(|(a, _)| a).collect();
        let mut sorted = addrs.clone();
        sorted.sort_unstable();
        assert_eq!(addrs, sorted);
        assert_eq!(seg.iter().filter(|(_, r)| r.is_ok()).count(), 32);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn structural_corruption_fails_open() {
        let dir = scratch("structure");
        let path = dir.join("seg-000001.seg");
        let mut records: Vec<_> = (0..8).map(put).collect();
        Segment::write(&path, &mut records).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Truncations anywhere in index/footer must fail open, not
        // mis-read.
        for cut in [good.len() - 1, good.len() - FOOTER_LEN, 10, 0] {
            std::fs::write(&path, &good[..cut]).unwrap();
            assert!(Segment::open(&path).is_err(), "cut {cut}");
        }
        // A flipped index byte must trip the index checksum.
        let mut flipped = good.clone();
        let idx = good.len() - FOOTER_LEN - 3;
        flipped[idx] ^= 0xFF;
        std::fs::write(&path, &flipped).unwrap();
        assert!(Segment::open(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_corruption_is_isolated_to_its_address() {
        let dir = scratch("record");
        let path = dir.join("seg-000001.seg");
        let mut records: Vec<_> = (0..8).map(put).collect();
        Segment::write(&path, &mut records).unwrap();
        let seg = Segment::open(&path).unwrap();
        let (victim_addr, _) = put(3);
        let victim_off = (0..seg.len())
            .map(|i| seg.index_entry(i))
            .find(|(a, _)| *a == victim_addr)
            .unwrap()
            .1;
        drop(seg);
        // Flip one byte inside the victim's frame body.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[victim_off + 10] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let seg = Segment::open(&path).unwrap();
        assert!(seg.get(victim_addr).unwrap().is_err(), "victim corrupt");
        assert!(seg.raw_frame(victim_addr).is_some());
        for n in [0u64, 1, 2, 4, 5, 6, 7] {
            let (addr, expect) = put(n);
            assert_eq!(seg.get(addr).unwrap().unwrap(), expect, "others intact");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Read-only memory-mapped files, without libc.
//!
//! Segment reads want to be zero-copy: a point read should touch only
//! the index entries the binary search visits plus the one record
//! frame, not re-read and re-allocate the whole file. The `libc` crate
//! cannot be vendored here (offline build), so the two syscalls we
//! need are declared directly against the platform C library on unix.
//! Anywhere that fails — non-unix targets, empty files, exotic
//! filesystems where `mmap` errors — the type degrades to a plain
//! heap read with identical semantics, just without the sharing.

use std::fs::File;
use std::io::{self, Read as _, Seek as _};
use std::ops::Deref;

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// An immutable byte view of a file: memory-mapped when possible, a
/// heap copy otherwise. Dereferences to `&[u8]` either way.
#[derive(Debug)]
pub struct Mapped {
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    #[cfg(unix)]
    Map {
        ptr: *const u8,
        len: usize,
    },
    Heap(Vec<u8>),
}

// SAFETY: the mapping is PROT_READ + MAP_PRIVATE — immutable shared
// bytes with no interior mutability — so views may move between and be
// shared across threads.
#[cfg(unix)]
unsafe impl Send for Mapped {}
#[cfg(unix)]
unsafe impl Sync for Mapped {}

impl Mapped {
    /// Maps (or reads) the whole of `file`.
    ///
    /// # Errors
    ///
    /// Returns an error only when the fallback heap read itself fails;
    /// an `mmap` refusal silently degrades to the heap path.
    pub fn of_file(file: &mut File) -> io::Result<Mapped> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        #[cfg(unix)]
        if len > 0 {
            use std::os::unix::io::AsRawFd as _;
            // SAFETY: fd is a valid open file descriptor for the
            // lifetime of the call; len is the file's current size; a
            // private read-only mapping cannot alias any Rust-visible
            // mutable memory.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize != -1 && !ptr.is_null() {
                return Ok(Mapped {
                    inner: Inner::Map {
                        ptr: ptr as *const u8,
                        len,
                    },
                });
            }
        }
        let mut bytes = Vec::with_capacity(len);
        file.seek(io::SeekFrom::Start(0))?;
        file.read_to_end(&mut bytes)?;
        Ok(Mapped {
            inner: Inner::Heap(bytes),
        })
    }

    /// Wraps bytes already in memory (used by tests and recovery
    /// paths that have the file contents anyway).
    pub fn from_bytes(bytes: Vec<u8>) -> Mapped {
        Mapped {
            inner: Inner::Heap(bytes),
        }
    }
}

impl Deref for Mapped {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            // SAFETY: ptr/len came from a successful mmap that lives
            // until Drop; the mapping is never mutated.
            Inner::Map { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Inner::Heap(bytes) => bytes,
        }
    }
}

impl Drop for Mapped {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Inner::Map { ptr, len } = self.inner {
            // SAFETY: exactly the region the constructor mapped, and
            // no slice into it can outlive self.
            unsafe {
                sys::munmap(ptr as *mut std::os::raw::c_void, len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    #[test]
    fn maps_round_trip_file_bytes() {
        let path = std::env::temp_dir().join(format!("scu-store-mmap-{}", std::process::id()));
        let payload = b"mapped bytes survive the trip".repeat(100);
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let mut file = File::open(&path).unwrap();
        let mapped = Mapped::of_file(&mut file).unwrap();
        assert_eq!(&*mapped, &payload[..]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_files_map_to_empty_slices() {
        let path = std::env::temp_dir().join(format!("scu-store-mmap0-{}", std::process::id()));
        std::fs::File::create(&path).unwrap();
        let mut file = File::open(&path).unwrap();
        let mapped = Mapped::of_file(&mut file).unwrap();
        assert!(mapped.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn heap_fallback_behaves_identically() {
        let mapped = Mapped::from_bytes(vec![1, 2, 3]);
        assert_eq!(&*mapped, &[1, 2, 3]);
    }
}

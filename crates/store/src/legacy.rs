//! The legacy layout behind the same trait: one JSON blob per entry
//! plus the line-oriented journal.
//!
//! This is the format every store before the LSM rewrite wrote —
//! `<dir>/<digest>.json` envelopes of `{"key":…,"value":…,"check":…}`
//! and (separately) a `manifest.json` of one JSON object per line.
//! Existing result directories keep working because
//! [`crate::open_dir`] detects this layout and serves it through the
//! same [`ResultStore`](crate::ResultStore) trait; `scu_store migrate`
//! converts it in one pass. The write paths are kept byte-for-byte
//! compatible with what `scu-harness` used to produce, so a migration
//! can round-trip against fixtures from old checkouts.

use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde_json::Value;

use crate::failpoints;
use crate::hash::stable_digest;
use crate::quarantine;
use crate::record::JournalRecord;
use crate::{GetResult, ResultStore, ResumeState, StoreStats};

/// The per-file JSON blob + line journal backend.
#[derive(Debug)]
pub struct LegacyStore {
    dir: PathBuf,
    journal_path: Option<PathBuf>,
    journal_file: Mutex<Option<File>>,
    quarantine_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    quarantined: AtomicU64,
}

enum Loaded {
    Hit(Value),
    Miss,
    Corrupt(String),
}

impl LegacyStore {
    /// Opens (creating if needed) a legacy blob directory.
    ///
    /// # Errors
    ///
    /// Returns IO errors from directory creation.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<LegacyStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(LegacyStore {
            dir,
            journal_path: None,
            journal_file: Mutex::new(None),
            quarantine_cap: quarantine::DEFAULT_QUARANTINE_CAP,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        })
    }

    /// Attaches a line-journal path (the classic `manifest.json`), so
    /// `journal_append`/`resume_state` work through the trait.
    #[must_use]
    pub fn with_manifest(mut self, path: impl Into<PathBuf>) -> LegacyStore {
        self.journal_path = Some(path.into());
        self
    }

    /// Overrides the quarantine retention cap (default
    /// [`quarantine::DEFAULT_QUARANTINE_CAP`]).
    #[must_use]
    pub fn with_quarantine_cap(mut self, cap: usize) -> LegacyStore {
        self.quarantine_cap = cap;
        self
    }

    /// The digest addressing `key` — the blob's filename stem.
    pub fn digest_of(key: &Value) -> String {
        let canonical = serde_json::to_string(key).expect("serialising a Value cannot fail");
        stable_digest(canonical.as_bytes())
    }

    fn path_of(&self, key: &Value) -> PathBuf {
        self.dir.join(format!("{}.json", Self::digest_of(key)))
    }

    /// Digest of the value's canonical bytes, stored alongside it.
    fn value_check(value: &Value) -> String {
        let canonical = serde_json::to_string(value).expect("serialising a Value cannot fail");
        stable_digest(canonical.as_bytes())
    }

    fn try_load(&self, path: &Path, key: &Value) -> Loaded {
        if let Err(e) = failpoints::io("cache-load") {
            return Loaded::Corrupt(format!("read failed: {e}"));
        }
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Loaded::Miss,
            Err(e) => return Loaded::Corrupt(format!("read failed: {e}")),
        };
        let envelope: Value = match serde_json::from_str(&text) {
            Ok(v) => v,
            Err(e) => return Loaded::Corrupt(format!("not valid JSON ({e})")),
        };
        // Verify the full key: a digest collision, truncation-then-
        // rewrite, or hand-edited file must not read as a hit.
        if envelope.get("key") != Some(key) {
            return Loaded::Corrupt("stored key does not match the requested key".to_string());
        }
        let value = match envelope.get("value") {
            Some(v) => v.clone(),
            None => return Loaded::Corrupt("missing 'value'".to_string()),
        };
        // Verify the value's own digest: a byte flip inside the value
        // keeps the envelope parseable and the key intact, so the key
        // check alone cannot catch it.
        let expect = Self::value_check(&value);
        match envelope.get("check").and_then(Value::as_str) {
            Some(check) if check == expect => Loaded::Hit(value),
            Some(_) => Loaded::Corrupt("value digest mismatch".to_string()),
            None => Loaded::Corrupt("missing value digest".to_string()),
        }
    }

    /// Moves a corrupt entry aside, keeping it for post-mortem instead
    /// of letting the next store silently paper over it.
    fn quarantine_blob(&self, path: &Path, reason: &str) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        match quarantine::quarantine_move(&self.quarantine_dir(), path, self.quarantine_cap) {
            Ok(dest) => eprintln!(
                "[scu-store] quarantined corrupt cache entry {} -> {} ({reason})",
                path.display(),
                dest.display()
            ),
            Err(e) => eprintln!(
                "[scu-store] corrupt cache entry {} ({reason}); quarantine failed: {e}",
                path.display()
            ),
        }
    }

    fn journal_lines(&self) -> io::Result<Vec<JournalRecord>> {
        let Some(path) = &self.journal_path else {
            return Ok(Vec::new());
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut records = Vec::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let parsed = serde_json::from_str::<Value>(line)
                .map_err(|e| e.to_string())
                .and_then(|v| JournalRecord::from_value(&v));
            match parsed {
                Ok(rec) => records.push(rec),
                // The torn tail of a killed sweep; the harness-side
                // loader owns the user-facing warning.
                Err(_) => break,
            }
        }
        Ok(records)
    }
}

impl ResultStore for LegacyStore {
    fn dir(&self) -> &Path {
        &self.dir
    }

    fn quarantine_dir(&self) -> PathBuf {
        self.dir.join("quarantine")
    }

    fn backend_name(&self) -> &'static str {
        "legacy"
    }

    fn get(&self, key: &Value) -> GetResult {
        let path = self.path_of(key);
        match self.try_load(&path, key) {
            Loaded::Hit(value) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                GetResult::Hit(value)
            }
            Loaded::Miss => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                GetResult::Miss
            }
            Loaded::Corrupt(reason) => {
                self.quarantine_blob(&path, &reason);
                self.misses.fetch_add(1, Ordering::Relaxed);
                GetResult::Corrupt
            }
        }
    }

    fn put(&self, key: &Value, value: &Value) -> io::Result<()> {
        failpoints::io("cache-store")?;
        let final_path = self.path_of(key);
        let envelope = Value::Object(vec![
            ("key".to_string(), key.clone()),
            ("value".to_string(), value.clone()),
            ("check".to_string(), Value::Str(Self::value_check(value))),
        ]);
        let text = serde_json::to_string(&envelope).expect("serialising a Value cannot fail");
        let tmp_path = final_path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp_path, text)?;
        std::fs::rename(&tmp_path, &final_path)?;
        self.stores.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn journal_append(&self, rec: &JournalRecord) -> io::Result<()> {
        failpoints::io("journal-append")?;
        let Some(path) = &self.journal_path else {
            return Ok(());
        };
        let mut guard = self.journal_file.lock().unwrap_or_else(|p| p.into_inner());
        if guard.is_none() {
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir)?;
            }
            *guard = Some(OpenOptions::new().create(true).append(true).open(path)?);
        }
        let file = guard.as_mut().expect("opened above");
        let line = serde_json::to_string(&rec.to_value()).expect("serialising a Value cannot fail");
        writeln!(file, "{line}").and_then(|()| file.flush())
    }

    fn begin_sweep(&self, resume: bool) -> io::Result<()> {
        let Some(path) = &self.journal_path else {
            return Ok(());
        };
        if resume {
            return Ok(());
        }
        // A fresh sweep must not inherit stale completions.
        let mut guard = self.journal_file.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        *guard = Some(
            OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(path)?,
        );
        Ok(())
    }

    fn resume_state(&self) -> io::Result<ResumeState> {
        let mut state = ResumeState::default();
        for rec in self.journal_lines()? {
            let rk = JournalRecord::resume_key(rec.key.as_ref(), &rec.id);
            state.values.insert(rk, rec.value);
            if let Some(d) = rec.digest {
                state.digests.insert(rec.id, d);
            }
        }
        Ok(state)
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            quarantined_total: quarantine::retained(&self.quarantine_dir()),
            backend: self.backend_name(),
            ..StoreStats::default()
        }
    }

    fn flush(&self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("scu-store-leg-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn key(n: u64) -> Value {
        Value::Object(vec![("cell".into(), Value::U64(n))])
    }

    #[test]
    fn round_trips_and_counts() {
        let dir = scratch("round");
        let store = LegacyStore::open(&dir).unwrap();
        assert!(matches!(store.get(&key(1)), GetResult::Miss));
        store.put(&key(1), &Value::Str("result".into())).unwrap();
        assert!(matches!(
            store.get(&key(1)),
            GetResult::Hit(Value::Str(s)) if s == "result"
        ));
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.stores), (1, 1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn blob_bytes_match_the_historical_format() {
        let dir = scratch("format");
        let store = LegacyStore::open(&dir).unwrap();
        store.put(&key(2), &Value::U64(7)).unwrap();
        let blob = dir.join(format!("{}.json", LegacyStore::digest_of(&key(2))));
        let text = std::fs::read_to_string(blob).unwrap();
        // Pinned: migration round-trips depend on this exact envelope.
        let check = LegacyStore::value_check(&Value::U64(7));
        assert_eq!(
            text,
            format!(r#"{{"key":{{"cell":2}},"value":7,"check":"{check}"}}"#)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_blob_is_quarantined_and_misses() {
        let dir = scratch("corrupt");
        let store = LegacyStore::open(&dir).unwrap();
        store.put(&key(3), &Value::U64(3)).unwrap();
        let blob = dir.join(format!("{}.json", LegacyStore::digest_of(&key(3))));
        let text = std::fs::read_to_string(&blob).unwrap();
        std::fs::write(&blob, text.replacen("3", "4", 1)).unwrap();
        assert!(matches!(store.get(&key(3)), GetResult::Corrupt));
        assert!(!blob.exists());
        assert_eq!(store.stats().quarantined, 1);
        assert_eq!(store.stats().quarantined_total, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_appends_match_the_historical_lines() {
        let dir = scratch("journal");
        let manifest = dir.join("manifest.json");
        let store = LegacyStore::open(&dir).unwrap().with_manifest(&manifest);
        store.begin_sweep(false).unwrap();
        store
            .journal_append(&JournalRecord {
                key: Some(key(1)),
                id: "cell-1".into(),
                value: Value::U64(10),
                digest: Some(99),
            })
            .unwrap();
        let text = std::fs::read_to_string(&manifest).unwrap();
        assert_eq!(
            text,
            "{\"key\":{\"cell\":1},\"id\":\"cell-1\",\"value\":10,\"digest\":99}\n"
        );
        let state = store.resume_state().unwrap();
        assert_eq!(
            state
                .values
                .get(&JournalRecord::resume_key(Some(&key(1)), "cell-1")),
            Some(&Value::U64(10))
        );
        assert_eq!(state.digests.get("cell-1"), Some(&99));
        // A fresh sweep truncates.
        store.begin_sweep(false).unwrap();
        assert!(store.resume_state().unwrap().values.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_cap_bounds_retention() {
        let dir = scratch("cap");
        let store = LegacyStore::open(&dir).unwrap().with_quarantine_cap(3);
        for n in 0..6 {
            store.put(&key(n), &Value::U64(n)).unwrap();
            let blob = dir.join(format!("{}.json", LegacyStore::digest_of(&key(n))));
            std::fs::write(&blob, "garbage").unwrap();
            assert!(matches!(store.get(&key(n)), GetResult::Corrupt));
        }
        assert_eq!(store.stats().quarantined, 6, "all six were quarantined");
        assert_eq!(store.stats().quarantined_total, 3, "but only three kept");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

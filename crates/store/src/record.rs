//! The record and frame formats shared by the WAL and segments.
//!
//! One *record* is one logical store event. Four kinds exist:
//!
//! - `Put` — a finished cell: resume key, id, optional timeline
//!   digest, and the value's canonical JSON bytes.
//! - `Mark` — metadata only: "this already-stored cell also completed
//!   in epoch E (with this id/digest)". Written when a sweep finishes
//!   a cell whose value is already on disk, so a warm sweep journals
//!   a few dozen bytes per cell instead of re-writing every value.
//! - `Epoch` — a sweep boundary. A fresh (non-resumed) sweep bumps
//!   the epoch instead of truncating anything: resume state is "all
//!   records at the current epoch", so old values stay readable as
//!   cache entries while the journal is logically empty.
//! - `Trace` — a recorded functional GPU trace, keyed by a cell's
//!   *semantic* key (`trace:{key}`). Encoded exactly like a `Put` but
//!   the payload is the raw trace-blob bytes (not JSON) and the
//!   digest field carries the payload's FNV so reads verify end to
//!   end without decoding. Trace records never participate in
//!   resume — they are cache content, not sweep progress.
//!
//! On disk a record travels in a *frame*:
//!
//! ```text
//! [u32le body_len][u32le crc32(body)][body]
//! ```
//!
//! and the body is:
//!
//! ```text
//! [u8 kind][u64le epoch]
//! [u32le rk_len][rk][u32le id_len][id][u8 has_digest][u64le digest]   (Put/Mark)
//! [value JSON bytes to end]                                           (Put)
//! ```
//!
//! Storing the resume key *string* (not the key JSON) means recovery
//! and resume never parse key objects — the map key is right there —
//! which is where the cold-open speedup over the line journal comes
//! from.

use serde_json::Value;

use crate::crc::crc32;
use crate::hash::stable_addr;

/// One completed cell, as the harness journals it. This is the same
/// shape `scu-harness` has always called `JournalEntry`; it lives here
/// so every backend speaks it.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// The job's cache key, if it had one.
    pub key: Option<Value>,
    /// The job's human-readable id.
    pub id: String,
    /// The value the job produced.
    pub value: Value,
    /// The run's timeline digest, when the value carried one — lets a
    /// resumed sweep cross-check a re-run cell against what the
    /// interrupted sweep observed.
    pub digest: Option<u64>,
}

impl JournalRecord {
    /// The string a resume pass matches jobs against: the canonical
    /// serialisation of the cache key, or the id for uncacheable jobs.
    pub fn resume_key(key: Option<&Value>, id: &str) -> String {
        match key {
            Some(k) => format!(
                "key:{}",
                serde_json::to_string(k).expect("serialising a Value cannot fail")
            ),
            None => format!("id:{id}"),
        }
    }

    /// The legacy line-journal JSON shape (`{"key":…,"id":…,…}`).
    pub fn to_value(&self) -> Value {
        let mut fields = vec![
            ("key".to_string(), self.key.clone().unwrap_or(Value::Null)),
            ("id".to_string(), Value::Str(self.id.clone())),
            ("value".to_string(), self.value.clone()),
        ];
        if let Some(d) = self.digest {
            fields.push(("digest".to_string(), Value::U64(d)));
        }
        Value::Object(fields)
    }

    /// Parses the legacy line-journal JSON shape.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason for missing or mistyped fields.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let key = match v.get("key") {
            None => return Err("missing 'key'".to_string()),
            Some(Value::Null) => None,
            Some(k) => Some(k.clone()),
        };
        let id = v
            .get("id")
            .and_then(Value::as_str)
            .ok_or("missing 'id'")?
            .to_string();
        let value = v.get("value").cloned().ok_or("missing 'value'")?;
        // Tolerant of journals written before digests existed.
        let digest = v.get("digest").and_then(Value::as_u64);
        Ok(JournalRecord {
            key,
            id,
            value,
            digest,
        })
    }
}

/// The record kinds, as serialised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A sweep boundary.
    Epoch,
    /// A value write.
    Put,
    /// A completion marker for an already-stored value.
    Mark,
    /// A recorded functional trace (raw bytes, semantic-keyed).
    Trace,
}

impl RecordKind {
    /// Whether this kind carries a payload after the fixed fields.
    fn has_value(self) -> bool {
        matches!(self, RecordKind::Put | RecordKind::Trace)
    }
}

/// One decoded store record.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// What happened.
    pub kind: RecordKind,
    /// The sweep epoch the record belongs to.
    pub epoch: u64,
    /// The resume key ([`JournalRecord::resume_key`]); empty for
    /// `Epoch` records.
    pub rk: String,
    /// The job id; empty for `Epoch` records and for values stored
    /// through the cache path before their cell journaled.
    pub id: String,
    /// The timeline digest, when known.
    pub digest: Option<u64>,
    /// The value's canonical JSON bytes; empty for `Epoch` and `Mark`.
    pub value: Vec<u8>,
}

impl Record {
    /// An `Epoch` boundary record.
    pub fn epoch(epoch: u64) -> Record {
        Record {
            kind: RecordKind::Epoch,
            epoch,
            rk: String::new(),
            id: String::new(),
            digest: None,
            value: Vec::new(),
        }
    }

    /// The store address of this record's resume key.
    pub fn addr(&self) -> u128 {
        stable_addr(self.rk.as_bytes())
    }

    /// Serialises the body (the CRC-covered part of a frame).
    pub fn encode_body(&self) -> Vec<u8> {
        let kind = match self.kind {
            RecordKind::Epoch => 0u8,
            RecordKind::Put => 1,
            RecordKind::Mark => 2,
            RecordKind::Trace => 3,
        };
        let mut body = Vec::with_capacity(32 + self.rk.len() + self.id.len() + self.value.len());
        body.push(kind);
        body.extend_from_slice(&self.epoch.to_le_bytes());
        if self.kind != RecordKind::Epoch {
            body.extend_from_slice(&(self.rk.len() as u32).to_le_bytes());
            body.extend_from_slice(self.rk.as_bytes());
            body.extend_from_slice(&(self.id.len() as u32).to_le_bytes());
            body.extend_from_slice(self.id.as_bytes());
            body.push(self.digest.is_some() as u8);
            body.extend_from_slice(&self.digest.unwrap_or(0).to_le_bytes());
            if self.kind.has_value() {
                body.extend_from_slice(&self.value);
            }
        }
        body
    }

    /// Parses a body serialised by [`Record::encode_body`].
    ///
    /// # Errors
    ///
    /// Returns a reason string for any structural violation; the
    /// caller treats the record (not the file) as corrupt.
    pub fn decode_body(body: &[u8]) -> Result<Record, String> {
        let mut cur = Cursor { body, pos: 0 };
        let kind = match cur.u8()? {
            0 => RecordKind::Epoch,
            1 => RecordKind::Put,
            2 => RecordKind::Mark,
            3 => RecordKind::Trace,
            other => return Err(format!("unknown record kind {other}")),
        };
        let epoch = cur.u64()?;
        if kind == RecordKind::Epoch {
            if cur.pos != body.len() {
                return Err("trailing bytes after epoch record".to_string());
            }
            return Ok(Record::epoch(epoch));
        }
        let rk = cur.string()?;
        let id = cur.string()?;
        let has_digest = cur.u8()?;
        let digest_bits = cur.u64()?;
        let digest = match has_digest {
            0 => None,
            1 => Some(digest_bits),
            other => return Err(format!("bad digest flag {other}")),
        };
        let value = if kind.has_value() {
            body[cur.pos..].to_vec()
        } else {
            if cur.pos != body.len() {
                return Err("trailing bytes after mark record".to_string());
            }
            Vec::new()
        };
        Ok(Record {
            kind,
            epoch,
            rk,
            id,
            digest,
            value,
        })
    }
}

struct Cursor<'a> {
    body: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.body.len())
            .ok_or("record body truncated")?;
        let slice = &self.body[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "non-UTF-8 string field".to_string())
    }
}

/// Bytes every frame spends on its length + CRC header.
pub const FRAME_HEADER: usize = 8;

/// Appends one frame (header + body) to `out`.
pub fn write_frame(out: &mut Vec<u8>, body: &[u8]) {
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out.extend_from_slice(body);
}

/// Why a frame could not be read.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before the frame does — a torn tail.
    Truncated,
    /// The body is complete but its CRC disagrees.
    BadCrc,
}

/// Reads the frame starting at `offset`, returning its body slice and
/// the offset of the next frame.
///
/// # Errors
///
/// [`FrameError::Truncated`] when `bytes` ends mid-frame,
/// [`FrameError::BadCrc`] when the checksum disagrees.
pub fn read_frame(bytes: &[u8], offset: usize) -> Result<(&[u8], usize), FrameError> {
    let header = bytes
        .get(offset..offset + FRAME_HEADER)
        .ok_or(FrameError::Truncated)?;
    let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(header[4..].try_into().unwrap());
    let body_start = offset + FRAME_HEADER;
    let body = bytes
        .get(body_start..body_start + len)
        .ok_or(FrameError::Truncated)?;
    if crc32(body) != crc {
        return Err(FrameError::BadCrc);
    }
    Ok((body, body_start + len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(n: u64) -> Record {
        Record {
            kind: RecordKind::Put,
            epoch: 3,
            rk: format!("key:{{\"cell\":{n}}}"),
            id: format!("cell-{n}"),
            digest: Some(n * 1000),
            value: format!("{{\"out\":{n}}}").into_bytes(),
        }
    }

    #[test]
    fn records_round_trip_through_frames() {
        for rec in [
            Record::epoch(7),
            put(1),
            Record {
                kind: RecordKind::Mark,
                value: Vec::new(),
                ..put(2)
            },
            Record {
                digest: None,
                id: String::new(),
                ..put(3)
            },
        ] {
            let mut buf = Vec::new();
            write_frame(&mut buf, &rec.encode_body());
            let (body, next) = read_frame(&buf, 0).unwrap();
            assert_eq!(next, buf.len());
            assert_eq!(Record::decode_body(body).unwrap(), rec);
        }
    }

    #[test]
    fn trace_records_round_trip_raw_binary_payloads() {
        // Trace payloads are not JSON and not UTF-8; the frame format
        // must carry them byte-exact.
        let rec = Record {
            kind: RecordKind::Trace,
            epoch: 5,
            rk: "trace:{\"func\":\"scu-func-1\"}".to_string(),
            id: String::new(),
            digest: Some(crate::hash::fnv64(&[0xff, 0x00, 0x80, 0x7f])),
            value: vec![0xff, 0x00, 0x80, 0x7f],
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &rec.encode_body());
        let (body, _) = read_frame(&buf, 0).unwrap();
        assert_eq!(Record::decode_body(body).unwrap(), rec);
    }

    #[test]
    fn torn_and_flipped_frames_are_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &put(1).encode_body());
        for cut in 0..buf.len() {
            assert_eq!(
                read_frame(&buf[..cut], 0).unwrap_err(),
                FrameError::Truncated,
                "cut at {cut}"
            );
        }
        for i in FRAME_HEADER..buf.len() {
            let mut flipped = buf.clone();
            flipped[i] ^= 0x40;
            assert_eq!(read_frame(&flipped, 0), Err(FrameError::BadCrc), "flip {i}");
        }
    }

    #[test]
    fn garbage_bodies_decode_to_errors_not_panics() {
        for len in 0..64 {
            let body: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            // Any error is fine; what matters is that nothing panics
            // and nothing nonsensical decodes as a Put with a value.
            if let Ok(rec) = Record::decode_body(&body) {
                assert_eq!(rec.encode_body(), body, "accepted body must re-encode");
            }
        }
    }

    #[test]
    fn resume_keys_match_the_journal_contract() {
        let key = Value::Object(vec![("cell".into(), Value::U64(4))]);
        assert_eq!(
            JournalRecord::resume_key(Some(&key), "x"),
            format!("key:{}", serde_json::to_string(&key).unwrap())
        );
        assert_eq!(JournalRecord::resume_key(None, "plain"), "id:plain");
    }
}

//! The `CURRENT` manifest: which segments are live.
//!
//! A tiny self-checksummed JSON file naming the live segment files in
//! age order, the next segment id, and the current sweep epoch. Every
//! mutation writes a complete replacement to a temp file and renames
//! it over `CURRENT` — readers see the old list or the new list,
//! never a half-written one. Segment files not named here are garbage
//! from an interrupted flush/compaction and are deleted on open.
//!
//! If `CURRENT` itself is corrupt the store does not give up: the file
//! is quarantined and the manifest rebuilt by scanning the directory
//! for segment files — their names carry their ids, and the epoch is
//! recovered as the maximum epoch seen in any record.

use std::io;
use std::path::Path;

use serde_json::Value;

use crate::hash::stable_digest;

/// The manifest's filename inside a store directory.
pub const CURRENT: &str = "CURRENT";

/// The live-segment list and store-wide counters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Manifest {
    /// The current sweep epoch.
    pub epoch: u64,
    /// The id the next flushed segment will take.
    pub next_segment: u64,
    /// Live segment filenames, oldest first.
    pub segments: Vec<String>,
}

/// The conventional filename for segment id `id`.
pub fn segment_file_name(id: u64) -> String {
    format!("seg-{id:06}.seg")
}

/// Parses an id back out of [`segment_file_name`]'s shape.
pub fn parse_segment_id(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

impl Manifest {
    fn inner_json(&self) -> String {
        let v = Value::Object(vec![
            ("version".to_string(), Value::U64(1)),
            ("epoch".to_string(), Value::U64(self.epoch)),
            ("next_segment".to_string(), Value::U64(self.next_segment)),
            (
                "segments".to_string(),
                Value::Array(
                    self.segments
                        .iter()
                        .map(|s| Value::Str(s.clone()))
                        .collect(),
                ),
            ),
        ]);
        serde_json::to_string(&v).expect("serialising a Value cannot fail")
    }

    /// Atomically replaces the manifest at `path`.
    ///
    /// # Errors
    ///
    /// Returns write/rename failures.
    pub fn store(&self, path: &Path) -> io::Result<()> {
        let inner = self.inner_json();
        let check = stable_digest(inner.as_bytes());
        let text = format!("{{\"check\":\"{check}\",\"manifest\":{inner}}}\n");
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, path)
    }

    /// Loads the manifest at `path`. `Ok(None)` when the file does
    /// not exist (a fresh store).
    ///
    /// # Errors
    ///
    /// `InvalidData` when the file exists but fails its self-check —
    /// the caller quarantines it and rebuilds from the directory.
    pub fn load(path: &Path) -> io::Result<Option<Manifest>> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let corrupt = |reason: &str| io::Error::new(io::ErrorKind::InvalidData, reason.to_string());
        let outer: Value =
            serde_json::from_str(text.trim()).map_err(|_| corrupt("manifest is not JSON"))?;
        let check = outer
            .get("check")
            .and_then(Value::as_str)
            .ok_or_else(|| corrupt("manifest missing check"))?;
        let inner = outer
            .get("manifest")
            .ok_or_else(|| corrupt("manifest missing body"))?;
        let inner_text = serde_json::to_string(inner).expect("serialising a Value cannot fail");
        if stable_digest(inner_text.as_bytes()) != check {
            return Err(corrupt("manifest checksum mismatch"));
        }
        let epoch = inner
            .get("epoch")
            .and_then(Value::as_u64)
            .ok_or_else(|| corrupt("manifest missing epoch"))?;
        let next_segment = inner
            .get("next_segment")
            .and_then(Value::as_u64)
            .ok_or_else(|| corrupt("manifest missing next_segment"))?;
        let segments = match inner.get("segments") {
            Some(Value::Array(items)) => items
                .iter()
                .map(|s| {
                    s.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| corrupt("segment name is not a string"))
                })
                .collect::<io::Result<Vec<_>>>()?,
            _ => return Err(corrupt("manifest missing segments")),
        };
        Ok(Some(Manifest {
            epoch,
            next_segment,
            segments,
        }))
    }

    /// Rebuilds a usable manifest by scanning `dir` for segment files
    /// (used after quarantining a corrupt `CURRENT`). The epoch is the
    /// caller's problem — it scans record contents.
    pub fn rebuild_from_dir(dir: &Path) -> Manifest {
        let mut ids: Vec<(u64, String)> = std::fs::read_dir(dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter_map(|e| {
                        let name = e.file_name().to_str()?.to_string();
                        Some((parse_segment_id(&name)?, name))
                    })
                    .collect()
            })
            .unwrap_or_default();
        ids.sort_unstable();
        Manifest {
            epoch: 0,
            next_segment: ids.last().map(|(id, _)| id + 1).unwrap_or(1),
            segments: ids.into_iter().map(|(_, name)| name).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("scu-store-man-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trips() {
        let dir = scratch("round");
        let path = dir.join(CURRENT);
        let m = Manifest {
            epoch: 4,
            next_segment: 9,
            segments: vec![segment_file_name(3), segment_file_name(8)],
        };
        m.store(&path).unwrap();
        assert_eq!(Manifest::load(&path).unwrap(), Some(m));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_is_none_corrupt_is_error() {
        let dir = scratch("corrupt");
        let path = dir.join(CURRENT);
        assert_eq!(Manifest::load(&path).unwrap(), None);
        let m = Manifest::default();
        m.store(&path).unwrap();
        let mut text = std::fs::read_to_string(&path).unwrap();
        text = text.replace("\"epoch\":0", "\"epoch\":7");
        std::fs::write(&path, text).unwrap();
        assert!(Manifest::load(&path).is_err(), "edited body trips check");
        std::fs::write(&path, "not json").unwrap();
        assert!(Manifest::load(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rebuild_scans_segment_names() {
        let dir = scratch("rebuild");
        std::fs::write(dir.join(segment_file_name(2)), b"x").unwrap();
        std::fs::write(dir.join(segment_file_name(5)), b"x").unwrap();
        std::fs::write(dir.join("unrelated.json"), b"x").unwrap();
        let m = Manifest::rebuild_from_dir(&dir);
        assert_eq!(m.segments, vec![segment_file_name(2), segment_file_name(5)]);
        assert_eq!(m.next_segment, 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_names_parse_back() {
        assert_eq!(parse_segment_id(&segment_file_name(42)), Some(42));
        assert_eq!(parse_segment_id("seg-junk.seg"), None);
        assert_eq!(parse_segment_id("other.seg"), None);
    }
}

//! Stable content hashing for store addresses.
//!
//! Records are addressed by a hash of their resume key (the canonical
//! compact JSON of the cache key, or the job id for uncacheable jobs).
//! The hash must be stable across processes, platforms and releases —
//! `std::hash` explicitly is not — so this module fixes the function:
//! two independently-keyed 64-bit FNV-1a passes concatenated into a
//! 128-bit digest. FNV is not collision-resistant against adversaries,
//! but keys come from our own configuration space, and every read
//! verifies the stored resume key against the requested one, so a
//! collision degrades to a miss, never to a wrong result.
//!
//! This is the same function `scu-harness` has always used for cache
//! blob filenames (it now re-exports this module), so digests printed
//! in old logs still correspond.

/// 64-bit FNV-1a with a caller-chosen offset basis.
fn fnv1a(bytes: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The standard FNV-1a offset basis.
const BASIS_A: u64 = 0xcbf29ce484222325;
/// A second basis (the standard one XOR-folded with π bits) giving an
/// independent 64-bit view of the same bytes.
const BASIS_B: u64 = 0xcbf29ce484222325 ^ 0x243F6A8885A308D3;

/// 128-bit stable digest of `bytes`, as 32 lowercase hex characters —
/// filesystem-safe, fixed-width.
pub fn stable_digest(bytes: &[u8]) -> String {
    format!(
        "{:016x}{:016x}",
        fnv1a(bytes, BASIS_A),
        fnv1a(bytes, BASIS_B)
    )
}

/// The same 128 bits as [`stable_digest`], as an integer — the form
/// segment indexes store and binary-search on.
pub fn stable_addr(bytes: &[u8]) -> u128 {
    ((fnv1a(bytes, BASIS_A) as u128) << 64) | fnv1a(bytes, BASIS_B) as u128
}

/// Standard 64-bit FNV-1a — the payload digest trace records carry so
/// a read can verify the blob end to end without decoding it.
pub fn fnv64(bytes: &[u8]) -> u64 {
    fnv1a(bytes, BASIS_A)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable() {
        // Pinned: changing the hash silently invalidates every
        // on-disk store, so make that an explicit decision.
        assert_eq!(stable_digest(b""), "cbf29ce484222325efcdf66c01812bf6");
        assert_eq!(stable_digest(b"scu"), stable_digest(b"scu"));
    }

    #[test]
    fn addr_is_the_digest_as_an_integer() {
        let digest = stable_digest(b"any resume key");
        let addr = stable_addr(b"any resume key");
        assert_eq!(format!("{addr:032x}"), digest);
    }

    #[test]
    fn nearby_inputs_diverge() {
        assert_ne!(stable_addr(b"cell-1"), stable_addr(b"cell-2"));
        assert_ne!(stable_addr(b"ab"), stable_addr(b"ba"));
    }
}

//! The quarantine directory: corrupt bytes kept for post-mortem.
//!
//! Both backends move (or copy) anything that fails validation into
//! `<dir>/quarantine/` instead of deleting it — a corrupt entry is
//! evidence. Under sustained corruption that directory would grow
//! without bound, so it is capped: past `cap` retained files the
//! oldest (by modification time, name as tie-break) are evicted.

use std::path::{Path, PathBuf};
use std::time::SystemTime;

/// The default retention cap, shared by every backend.
pub const DEFAULT_QUARANTINE_CAP: usize = 64;

/// Number of files currently retained in `qdir` (0 if it does not
/// exist).
pub fn retained(qdir: &Path) -> u64 {
    std::fs::read_dir(qdir)
        .map(|entries| entries.filter_map(Result::ok).count() as u64)
        .unwrap_or(0)
}

/// Moves `path` into `qdir` (creating it), then enforces `cap`.
///
/// # Errors
///
/// Returns the underlying IO error when the move fails; the caller
/// logs and carries on — quarantine is best-effort.
pub fn quarantine_move(qdir: &Path, path: &Path, cap: usize) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(qdir)?;
    let dest = unique_dest(
        qdir,
        path.file_name().and_then(|n| n.to_str()).unwrap_or("entry"),
    );
    std::fs::rename(path, &dest)?;
    enforce_cap(qdir, cap);
    Ok(dest)
}

/// Writes `bytes` into `qdir` under `name` (suffixed if taken), then
/// enforces `cap`. Used when the corrupt unit is a slice of a live
/// file that must not itself be moved.
///
/// # Errors
///
/// Returns the underlying IO error when the write fails.
pub fn quarantine_bytes(
    qdir: &Path,
    name: &str,
    bytes: &[u8],
    cap: usize,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(qdir)?;
    let dest = unique_dest(qdir, name);
    std::fs::write(&dest, bytes)?;
    enforce_cap(qdir, cap);
    Ok(dest)
}

fn unique_dest(qdir: &Path, name: &str) -> PathBuf {
    let plain = qdir.join(name);
    if !plain.exists() {
        return plain;
    }
    for n in 1.. {
        let candidate = qdir.join(format!("{name}.{n}"));
        if !candidate.exists() {
            return candidate;
        }
    }
    unreachable!("some suffix is always free")
}

/// Evicts oldest-first until at most `cap` files remain.
pub fn enforce_cap(qdir: &Path, cap: usize) {
    let Ok(entries) = std::fs::read_dir(qdir) else {
        return;
    };
    let mut files: Vec<(SystemTime, PathBuf)> = entries
        .filter_map(Result::ok)
        .map(|e| {
            let mtime = e
                .metadata()
                .and_then(|m| m.modified())
                .unwrap_or(SystemTime::UNIX_EPOCH);
            (mtime, e.path())
        })
        .collect();
    if files.len() <= cap {
        return;
    }
    files.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    let excess = files.len() - cap;
    for (_, path) in files.into_iter().take(excess) {
        let _ = std::fs::remove_file(path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("scu-store-quar-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn cap_evicts_oldest_first() {
        let qdir = scratch("cap");
        for i in 0..6 {
            quarantine_bytes(&qdir, &format!("blob-{i}"), b"bad", 4).unwrap();
        }
        assert_eq!(retained(&qdir), 4);
        // Oldest two are gone; mtime granularity can be coarse, so the
        // name tie-break keeps eviction deterministic here.
        assert!(!qdir.join("blob-0").exists());
        assert!(!qdir.join("blob-1").exists());
        assert!(qdir.join("blob-5").exists());
        let _ = std::fs::remove_dir_all(&qdir);
    }

    #[test]
    fn name_collisions_get_suffixes() {
        let qdir = scratch("collide");
        let a = quarantine_bytes(&qdir, "same", b"one", 8).unwrap();
        let b = quarantine_bytes(&qdir, "same", b"two", 8).unwrap();
        assert_ne!(a, b);
        assert_eq!(retained(&qdir), 2);
        let _ = std::fs::remove_dir_all(&qdir);
    }

    #[test]
    fn moves_keep_the_bytes() {
        let qdir = scratch("move");
        let victim = qdir.with_extension("victim");
        std::fs::write(&victim, b"evidence").unwrap();
        let dest = quarantine_move(&qdir, &victim, 8).unwrap();
        assert!(!victim.exists());
        assert_eq!(std::fs::read(dest).unwrap(), b"evidence");
        let _ = std::fs::remove_dir_all(&qdir);
    }
}

//! `scu-store`: the persistence layer behind SCU's result cache and
//! sweep journal.
//!
//! One trait, [`ResultStore`], captures the contract the harness and
//! server rely on — content-addressed get/put keyed by canonical JSON,
//! corruption is quarantined and reported as a miss (never served),
//! journal appends give crash-resume — and two backends implement it:
//!
//! - [`LsmStore`] (the default): an LSM-lite layout where a CRC-framed
//!   write-ahead log doubles as the journal, immutable sorted segments
//!   are memory-mapped for zero-copy point reads, a `CURRENT` manifest
//!   is swapped atomically, and background compaction merges segments
//!   without blocking readers or writers.
//! - [`LegacyStore`]: the historical one-JSON-blob-per-entry directory
//!   plus line-JSON journal, kept byte-compatible so existing result
//!   directories remain readable and `scu_store migrate` can convert
//!   them.
//!
//! [`open_dir`] auto-detects which layout a directory holds.
//!
//! The crate deliberately depends only on the workspace's vendored
//! `serde_json` — no external crates — and hosts the stable hashing
//! ([`stable_digest`]) that both backends and the harness share.

pub mod crc;
pub mod failpoints;
pub mod hash;
pub mod legacy;
pub mod lsm;
pub mod manifest;
pub mod migrate;
pub mod mmap;
pub mod quarantine;
pub mod record;
pub mod segment;
pub mod wal;

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use serde_json::Value;

pub use hash::{stable_addr, stable_digest};
pub use legacy::LegacyStore;
pub use lsm::{LsmOptions, LsmStore};
pub use record::JournalRecord;

/// What a cache lookup found.
#[derive(Debug, Clone, PartialEq)]
pub enum GetResult {
    /// The stored value, verified end to end.
    Hit(Value),
    /// Nothing stored for this key.
    Miss,
    /// Something was stored but failed verification; it has been
    /// quarantined and must be recomputed.
    Corrupt,
}

/// What a trace lookup found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceGet {
    /// The stored trace bytes, digest-verified.
    Hit(Vec<u8>),
    /// Nothing stored for this semantic key.
    Miss,
    /// Something was stored but failed verification — the caller must
    /// fall back to cold recording (never replay suspect bytes).
    Corrupt,
}

/// Everything a resumed sweep needs from the journal: completed values
/// keyed by resume key, plus outcome digests keyed by cell id.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResumeState {
    /// Completed cell values, keyed by [`JournalRecord::resume_key`].
    pub values: HashMap<String, Value>,
    /// Outcome digests keyed by cell id (for strict-resume checking).
    pub digests: HashMap<String, u64>,
}

/// Counters a backend exposes for `/metrics` and sweep summaries.
///
/// Legacy backends leave the LSM-specific fields at zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Verified cache hits.
    pub hits: u64,
    /// Lookups that found nothing (corrupt entries also count a miss).
    pub misses: u64,
    /// Successful stores.
    pub stores: u64,
    /// Entries quarantined since open.
    pub quarantined: u64,
    /// Files currently retained in the quarantine directory.
    pub quarantined_total: u64,
    /// WAL frames appended since open.
    pub wal_appends: u64,
    /// Segment point-reads served since open.
    pub segment_reads: u64,
    /// Background compaction passes completed.
    pub compactions: u64,
    /// Records replayed from the WAL at open.
    pub recovered_records: u64,
    /// Bytes cut off a torn WAL tail at open.
    pub truncated_tail_bytes: u64,
    /// Verified functional-trace hits (native trace path only; the
    /// legacy envelope path counts under `hits`).
    pub trace_hits: u64,
    /// Trace lookups that found nothing or found corruption.
    pub trace_misses: u64,
    /// Functional traces stored.
    pub trace_stores: u64,
    /// Which backend produced these numbers.
    pub backend: &'static str,
}

/// The single persistence seam: result cache + sweep journal.
///
/// Implementations are internally synchronised — one instance is
/// shared across worker threads (and, in the server, across batches).
/// The contract every backend upholds:
///
/// - `get` never returns bytes that failed verification; corruption is
///   quarantined (kept for post-mortem, bounded by a cap) and surfaces
///   as [`GetResult::Corrupt`], which callers treat as a miss.
/// - `put` is atomic: a reader sees the old entry or the new one,
///   never a torn write.
/// - `journal_append` makes a completed cell durable for resume; after
///   a crash, `resume_state` returns every cell journaled in the
///   current sweep and nothing from older sweeps.
/// - A store directory has a single writing process at a time.
pub trait ResultStore: Send + Sync + std::fmt::Debug {
    /// The directory this store lives in.
    fn dir(&self) -> &Path;

    /// Where corrupt entries are kept for post-mortem.
    fn quarantine_dir(&self) -> PathBuf;

    /// A short name for summaries and `/metrics` (`"lsm"`, `"legacy"`).
    fn backend_name(&self) -> &'static str;

    /// Whether this backend journals through the store itself (the WAL
    /// *is* the journal). When false, the harness keeps writing its
    /// classic line-JSON manifest file alongside the cache.
    fn unified_journal(&self) -> bool {
        false
    }

    /// Looks up the value stored for `key`.
    fn get(&self, key: &Value) -> GetResult;

    /// Stores `value` under `key`.
    ///
    /// # Errors
    ///
    /// Returns IO failures (including injected ones); callers degrade
    /// to running uncached.
    fn put(&self, key: &Value, value: &Value) -> io::Result<()>;

    /// Journals a completed cell for crash-resume.
    ///
    /// # Errors
    ///
    /// Returns IO failures; callers degrade (the sweep continues, the
    /// journal is just shorter).
    fn journal_append(&self, rec: &JournalRecord) -> io::Result<()>;

    /// Marks a sweep boundary. `resume = false` starts a fresh sweep —
    /// prior completions no longer count for resume (though cached
    /// values remain readable); `resume = true` continues the
    /// interrupted sweep.
    ///
    /// # Errors
    ///
    /// Returns IO failures from recording the boundary.
    fn begin_sweep(&self, resume: bool) -> io::Result<()>;

    /// Every completion journaled in the current sweep.
    ///
    /// # Errors
    ///
    /// Returns IO failures from reading the journal.
    fn resume_state(&self) -> io::Result<ResumeState>;

    /// Looks up the recorded functional trace stored for a semantic
    /// key. The default implementation round-trips through the JSON
    /// cache (`get`) via a hex envelope, so every backend supports
    /// traces; the LSM backend overrides it with a native binary
    /// record kind.
    fn get_trace(&self, key: &str) -> TraceGet {
        match self.get(&trace_envelope_key(key)) {
            GetResult::Hit(v) => decode_trace_envelope(&v),
            GetResult::Miss => TraceGet::Miss,
            GetResult::Corrupt => TraceGet::Corrupt,
        }
    }

    /// Stores the recorded functional trace for a semantic key.
    /// Overwrites are idempotent: traces are a pure function of the
    /// key, so any write is as good as the first.
    ///
    /// # Errors
    ///
    /// Returns IO failures; callers degrade to not caching the trace.
    fn put_trace(&self, key: &str, bytes: &[u8]) -> io::Result<()> {
        let envelope = Value::Object(vec![
            ("fnv".to_string(), Value::U64(hash::fnv64(bytes))),
            ("hex".to_string(), Value::Str(hex_encode(bytes))),
        ]);
        self.put(&trace_envelope_key(key), &envelope)
    }

    /// Current counters.
    fn stats(&self) -> StoreStats;

    /// Forces buffered state durable (for the LSM backend, flushes the
    /// memtable into a segment).
    ///
    /// # Errors
    ///
    /// Returns IO failures from the flush.
    fn flush(&self) -> io::Result<()>;
}

/// The JSON cache key the default (envelope) trace path files traces
/// under — namespaced so it can never collide with a result key.
fn trace_envelope_key(key: &str) -> Value {
    Value::Object(vec![("trace".to_string(), Value::Str(key.to_string()))])
}

/// Verifies and unwraps an envelope written by the default
/// [`ResultStore::put_trace`].
fn decode_trace_envelope(v: &Value) -> TraceGet {
    let (Some(fnv), Some(hex)) = (
        v.get("fnv").and_then(Value::as_u64),
        v.get("hex").and_then(Value::as_str),
    ) else {
        return TraceGet::Corrupt;
    };
    let Some(bytes) = hex_decode(hex) else {
        return TraceGet::Corrupt;
    };
    if hash::fnv64(&bytes) != fnv {
        return TraceGet::Corrupt;
    }
    TraceGet::Hit(bytes)
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(s.get(i..i + 2)?, 16).ok())
        .collect()
}

/// Opens the store at `dir`, auto-detecting the layout:
///
/// - a `CURRENT` manifest means LSM;
/// - otherwise any `*.json` blob directly in the directory means the
///   legacy per-file layout (pass `legacy_manifest` to also serve its
///   line journal through the trait);
/// - an empty or missing directory gets a fresh LSM store.
///
/// # Errors
///
/// Returns IO errors from opening the detected backend.
pub fn open_dir(
    dir: impl Into<PathBuf>,
    legacy_manifest: Option<PathBuf>,
) -> io::Result<Arc<dyn ResultStore>> {
    let dir = dir.into();
    if dir.join(manifest::CURRENT).exists() {
        return Ok(Arc::new(LsmStore::open(dir)?));
    }
    let has_blobs = std::fs::read_dir(&dir)
        .map(|entries| {
            entries.filter_map(Result::ok).any(|e| {
                e.path().extension().is_some_and(|ext| ext == "json")
                    && e.file_type().map(|t| t.is_file()).unwrap_or(false)
            })
        })
        .unwrap_or(false);
    if has_blobs {
        let mut store = LegacyStore::open(dir)?;
        if let Some(path) = legacy_manifest {
            store = store.with_manifest(path);
        }
        return Ok(Arc::new(store));
    }
    Ok(Arc::new(LsmStore::open(dir)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("scu-store-lib-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn key(n: u64) -> Value {
        Value::Object(vec![("cell".into(), Value::U64(n))])
    }

    #[test]
    fn fresh_directories_get_the_lsm_backend() {
        let dir = scratch("fresh");
        let store = open_dir(&dir, None).unwrap();
        assert_eq!(store.backend_name(), "lsm");
        assert!(store.unified_journal());
        // And a reopen sticks with it.
        store.put(&key(1), &Value::U64(1)).unwrap();
        store.flush().unwrap();
        drop(store);
        let store = open_dir(&dir, None).unwrap();
        assert_eq!(store.backend_name(), "lsm");
        assert!(matches!(store.get(&key(1)), GetResult::Hit(Value::U64(1))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn blob_directories_get_the_legacy_backend() {
        let dir = scratch("blobs");
        {
            let legacy = LegacyStore::open(&dir).unwrap();
            legacy.put(&key(7), &Value::U64(70)).unwrap();
        }
        let store = open_dir(&dir, None).unwrap();
        assert_eq!(store.backend_name(), "legacy");
        assert!(!store.unified_journal());
        assert!(matches!(store.get(&key(7)), GetResult::Hit(Value::U64(70))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn current_manifest_wins_over_stray_json() {
        let dir = scratch("mixed");
        {
            let store = LsmStore::open(&dir).unwrap();
            store.put(&key(1), &Value::U64(1)).unwrap();
            store.flush().unwrap();
        }
        // A stray .json (e.g. a half-migrated blob) must not flip the
        // detection back to legacy.
        std::fs::write(dir.join("stray.json"), "{}").unwrap();
        let store = open_dir(&dir, None).unwrap();
        assert_eq!(store.backend_name(), "lsm");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_backend_serves_traces_through_the_envelope() {
        let dir = scratch("legacy-trace");
        let store = LegacyStore::open(&dir).unwrap();
        let blob: Vec<u8> = vec![0x00, 0xff, 0x42, 0x42, 0x80];
        assert_eq!(store.get_trace("k"), TraceGet::Miss);
        store.put_trace("k", &blob).unwrap();
        assert_eq!(store.get_trace("k"), TraceGet::Hit(blob.clone()));
        // A tampered envelope (fnv mismatch) must never replay.
        store
            .put(
                &trace_envelope_key("bad"),
                &Value::Object(vec![
                    ("fnv".into(), Value::U64(1)),
                    ("hex".into(), Value::Str(hex_encode(&blob))),
                ]),
            )
            .unwrap();
        assert_eq!(store.get_trace("bad"), TraceGet::Corrupt);
        // And the trace key can never shadow a result key.
        assert!(matches!(
            store.get(&Value::Str("k".into())),
            GetResult::Miss
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&bytes)), Some(bytes));
        assert_eq!(hex_decode("0"), None, "odd length");
        assert_eq!(hex_decode("zz"), None, "non-hex");
        assert_eq!(hex_decode(""), Some(Vec::new()));
    }

    #[test]
    fn stats_default_is_all_zero() {
        let stats = StoreStats::default();
        assert_eq!(stats.hits + stats.misses + stats.stores, 0);
        assert_eq!(stats.backend, "");
    }
}

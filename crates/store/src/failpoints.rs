//! Fault-injection seam.
//!
//! The store must participate in the harness's failpoint subsystem
//! (`SCU_FAILPOINTS`, sites like `wal-append=io-error`), but the
//! dependency points the other way: `scu-harness` depends on
//! `scu-store`. So the store exposes a single function-pointer hook;
//! the harness installs its own `failpoint::io` into it the first time
//! it constructs a store. With nothing installed every site is a
//! no-op, so the store stays zero-cost and dependency-free standalone.

use std::sync::OnceLock;

/// The hook's shape: given a site name, return `Err` to inject an IO
/// failure at that site (or sleep, for delay actions) and `Ok(())` to
/// proceed.
pub type IoHook = fn(&str) -> std::io::Result<()>;

static HOOK: OnceLock<IoHook> = OnceLock::new();

/// Installs the process-wide failpoint hook. Idempotent: the first
/// installation wins and later calls are ignored, so every store
/// constructor can call this unconditionally.
pub fn install(hook: IoHook) {
    let _ = HOOK.set(hook);
}

/// Fires the failpoint at `site`, if a hook is installed.
///
/// # Errors
///
/// Returns whatever injected error the hook decides on.
pub fn io(site: &str) -> std::io::Result<()> {
    match HOOK.get() {
        Some(hook) => hook(site),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uninstalled_hook_is_a_no_op() {
        assert!(io("wal-append").is_ok());
    }
}

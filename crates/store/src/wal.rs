//! The write-ahead log: the journal that is also the cache's memtable
//! backing.
//!
//! `wal.log` is `SCUWAL01` followed by CRC-framed records (see
//! [`crate::record`]). Every put and every journal append becomes one
//! frame, written and left in place until a segment flush resets the
//! log. Recovery on open replays the intact prefix:
//!
//! - a torn final frame (SIGKILL mid-append) is **truncated** — the
//!   file is physically cut back to the last intact frame so the
//!   damage can never propagate into later reads;
//! - a file whose magic is wrong is quarantined whole and a fresh log
//!   started — it was not written by this store;
//! - everything before the tear is returned to the caller, which is
//!   exactly the resume guarantee: completed cells survive any kill.

use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::failpoints;
use crate::quarantine;
use crate::record::{read_frame, write_frame, Record};

/// First 8 bytes of every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"SCUWAL01";

/// What [`Wal::open`] found and repaired.
#[derive(Debug, Default)]
pub struct WalRecovery {
    /// The intact records, in append order.
    pub records: Vec<Record>,
    /// Bytes cut off the tail (0 for a clean log).
    pub truncated_tail_bytes: u64,
    /// Whether a wrong-magic file was quarantined whole.
    pub quarantined_file: bool,
}

/// An open, append-only write-ahead log.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: Mutex<File>,
}

impl Wal {
    /// Opens (creating or recovering) the log at `path`, quarantining
    /// unrecognised files into `qdir` (capped at `cap`).
    ///
    /// # Errors
    ///
    /// Returns IO errors from reading, truncating or creating the
    /// file. Corrupt *content* is never an error — that is what
    /// recovery absorbs.
    pub fn open(path: &Path, qdir: &Path, cap: usize) -> io::Result<(Wal, WalRecovery)> {
        let mut recovery = WalRecovery::default();
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        if !bytes.is_empty() && !bytes.starts_with(WAL_MAGIC) {
            // Not ours. Keep the evidence, start fresh.
            if quarantine::quarantine_move(qdir, path, cap).is_ok() {
                recovery.quarantined_file = true;
            } else {
                let _ = std::fs::remove_file(path);
            }
        } else if !bytes.is_empty() {
            let mut offset = WAL_MAGIC.len();
            // A frame that fails its CRC or runs past the file is the
            // torn tail; a frame whose CRC holds but whose body does
            // not parse is treated the same way — nothing after an
            // undecodable record can be trusted.
            while let Ok((body, next)) = read_frame(&bytes, offset) {
                match Record::decode_body(body) {
                    Ok(rec) => {
                        recovery.records.push(rec);
                        offset = next;
                    }
                    Err(_) => break,
                }
                if offset == bytes.len() {
                    break;
                }
            }
            if offset < bytes.len() {
                recovery.truncated_tail_bytes = (bytes.len() - offset) as u64;
                let file = OpenOptions::new().write(true).open(path)?;
                file.set_len(offset as u64)?;
            }
        }
        let fresh = !path.exists();
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        if fresh || std::fs::metadata(path)?.len() == 0 {
            file.write_all(WAL_MAGIC)?;
        }
        Ok((
            Wal {
                path: path.to_path_buf(),
                file: Mutex::new(file),
            },
            recovery,
        ))
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record frame. Carries the `wal-append` failpoint.
    ///
    /// # Errors
    ///
    /// Returns write failures (including injected ones); the caller
    /// degrades — the cell still completed, the log is just shorter.
    pub fn append(&self, rec: &Record) -> io::Result<()> {
        failpoints::io("wal-append")?;
        let mut frame = Vec::new();
        write_frame(&mut frame, &rec.encode_body());
        let mut file = self.file.lock().unwrap_or_else(|p| p.into_inner());
        file.write_all(&frame)
    }

    /// Cuts the log back to just its magic — called after a segment
    /// flush has made the records durable elsewhere. A crash *before*
    /// this call merely replays records that are also in the segment;
    /// the merge makes that benign.
    ///
    /// # Errors
    ///
    /// Returns truncation failures.
    pub fn reset(&self) -> io::Result<()> {
        let file = self.file.lock().unwrap_or_else(|p| p.into_inner());
        file.set_len(WAL_MAGIC.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordKind;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("scu-store-wal-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn put(n: u64) -> Record {
        Record {
            kind: RecordKind::Put,
            epoch: 1,
            rk: format!("key:{{\"cell\":{n}}}"),
            id: format!("cell-{n}"),
            digest: Some(n),
            value: format!("{n}").into_bytes(),
        }
    }

    #[test]
    fn append_reopen_replays_in_order() {
        let dir = scratch("replay");
        let path = dir.join("wal.log");
        {
            let (wal, rec) = Wal::open(&path, &dir.join("q"), 8).unwrap();
            assert!(rec.records.is_empty());
            wal.append(&put(1)).unwrap();
            wal.append(&Record::epoch(2)).unwrap();
            wal.append(&put(3)).unwrap();
        }
        let (_, rec) = Wal::open(&path, &dir.join("q"), 8).unwrap();
        assert_eq!(rec.records, vec![put(1), Record::epoch(2), put(3)]);
        assert_eq!(rec.truncated_tail_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_cut_and_never_returns() {
        let dir = scratch("torn");
        let path = dir.join("wal.log");
        {
            let (wal, _) = Wal::open(&path, &dir.join("q"), 8).unwrap();
            wal.append(&put(1)).unwrap();
            wal.append(&put(2)).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let (_, rec) = Wal::open(&path, &dir.join("q"), 8).unwrap();
        assert_eq!(rec.records, vec![put(1)]);
        assert!(rec.truncated_tail_bytes > 5, "whole torn frame cut");
        // The file itself was repaired: a second open sees a clean log.
        let (_, again) = Wal::open(&path, &dir.join("q"), 8).unwrap();
        assert_eq!(again.records, vec![put(1)]);
        assert_eq!(again.truncated_tail_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_files_are_quarantined_whole() {
        let dir = scratch("foreign");
        let path = dir.join("wal.log");
        std::fs::write(&path, b"this is not a WAL at all").unwrap();
        let (wal, rec) = Wal::open(&path, &dir.join("q"), 8).unwrap();
        assert!(rec.quarantined_file);
        assert!(rec.records.is_empty());
        assert_eq!(quarantine::retained(&dir.join("q")), 1);
        wal.append(&put(9)).unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&path, &dir.join("q"), 8).unwrap();
        assert_eq!(rec.records, vec![put(9)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reset_empties_the_log_but_keeps_it_usable() {
        let dir = scratch("reset");
        let path = dir.join("wal.log");
        let (wal, _) = Wal::open(&path, &dir.join("q"), 8).unwrap();
        wal.append(&put(1)).unwrap();
        wal.reset().unwrap();
        wal.append(&put(2)).unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&path, &dir.join("q"), 8).unwrap();
        assert_eq!(rec.records, vec![put(2)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_truncation_point_yields_an_intact_prefix() {
        let dir = scratch("every-cut");
        let path = dir.join("wal.log");
        {
            let (wal, _) = Wal::open(&path, &dir.join("q"), 8).unwrap();
            for n in 0..4 {
                wal.append(&put(n)).unwrap();
            }
        }
        let full = std::fs::read(&path).unwrap();
        for cut in WAL_MAGIC.len()..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (_, rec) = Wal::open(&path, &dir.join("q"), 8).unwrap();
            assert!(rec.records.len() <= 4);
            for (i, r) in rec.records.iter().enumerate() {
                assert_eq!(r, &put(i as u64), "prefix intact at cut {cut}");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

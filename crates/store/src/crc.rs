//! CRC32 (IEEE 802.3, reflected) for record framing.
//!
//! Every WAL and segment record carries a CRC of its body so a torn
//! write, bit rot, or a hand-edited file is detected before the bytes
//! are believed. The polynomial is the ubiquitous 0xEDB88320 form —
//! the same checksum gzip, PNG and SQLite's WAL use — table-driven and
//! computed at compile time so the crate stays dependency-free.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_reference_vector() {
        // The universal CRC32 check value: changing the polynomial or
        // reflection silently invalidates every store on disk, so pin
        // it.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_byte_changes() {
        let a = crc32(b"scu-store record body");
        let b = crc32(b"scu-store record bodz");
        assert_ne!(a, b);
        assert_eq!(a, crc32(b"scu-store record body"));
    }
}

//! The LSM-lite backend: WAL + memtable + mmap'd segments.
//!
//! Write path: every put and journal append becomes one WAL frame and
//! one memtable entry. When the memtable passes a threshold it is
//! flushed — merged one-record-per-address, sorted, written as an
//! immutable segment, named in `CURRENT`, and the WAL reset. Reads go
//! memtable first, then segments newest→oldest through a lock-free
//! snapshot (`Arc<Vec<Arc<Segment>>>` swapped atomically), so neither
//! flush nor compaction ever blocks a reader.
//!
//! **The WAL is the journal.** A finished cell appends exactly one
//! record; crash-resume and caching are served from the same bytes.
//! Sweep boundaries are `Epoch` records: a fresh sweep bumps the
//! epoch instead of truncating anything, so "journaled this sweep"
//! means "has a record at the current epoch" while older values stay
//! readable as cache entries. A warm sweep therefore journals a
//! ~100-byte `Mark` per cell instead of re-writing values.
//!
//! Crash matrix (see DESIGN.md for the long form): a torn WAL tail is
//! truncated on open; a crash between segment write and manifest swap
//! leaves a stray file that open deletes; a crash between manifest
//! swap and WAL reset replays records that also live in the new
//! segment, which the newest-wins merge absorbs. Corrupt segment
//! records are quarantined and their address poisoned until a fresh
//! put supersedes them or compaction drops them; corrupt segment
//! structure quarantines the whole file; a corrupt `CURRENT` is
//! quarantined and rebuilt by directory scan.
//!
//! Single-writer assumption: one process owns a store directory at a
//! time (the harness and server already guarantee this). Concurrent
//! *threads* in that process are fully supported.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde_json::Value;

use crate::failpoints;
use crate::manifest::{segment_file_name, Manifest, CURRENT};
use crate::quarantine;
use crate::record::{JournalRecord, Record, RecordKind};
use crate::segment::Segment;
use crate::wal::Wal;
use crate::{GetResult, ResultStore, ResumeState, StoreStats, TraceGet};

/// Tuning knobs; the defaults suit sweep workloads.
#[derive(Debug, Clone)]
pub struct LsmOptions {
    /// Memtable addresses that trigger a segment flush.
    pub flush_records: usize,
    /// Live-segment count that triggers background compaction.
    pub compact_min_segments: usize,
    /// Quarantine retention cap.
    pub quarantine_cap: usize,
}

impl Default for LsmOptions {
    fn default() -> Self {
        LsmOptions {
            flush_records: 1024,
            compact_min_segments: 4,
            quarantine_cap: quarantine::DEFAULT_QUARANTINE_CAP,
        }
    }
}

/// One address's merged state (memtable entry / merge scratch).
#[derive(Debug, Clone, Default)]
struct MemRec {
    rk: String,
    id: String,
    digest: Option<u64>,
    epoch: u64,
    value: Option<Vec<u8>>,
    /// The value is a raw trace blob, not JSON — round-trips the
    /// record kind through flush and compaction.
    trace: bool,
}

impl MemRec {
    fn absorb(&mut self, rec: &Record) {
        self.epoch = self.epoch.max(rec.epoch);
        if self.rk.is_empty() {
            self.rk = rec.rk.clone();
        }
        if !rec.id.is_empty() {
            self.id = rec.id.clone();
        }
        if rec.digest.is_some() {
            self.digest = rec.digest;
        }
        if rec.kind == RecordKind::Put || rec.kind == RecordKind::Trace {
            self.value = Some(rec.value.clone());
            self.trace = rec.kind == RecordKind::Trace;
        }
    }

    fn to_record(&self) -> Record {
        Record {
            kind: match (&self.value, self.trace) {
                (Some(_), true) => RecordKind::Trace,
                (Some(_), false) => RecordKind::Put,
                (None, _) => RecordKind::Mark,
            },
            epoch: self.epoch,
            rk: self.rk.clone(),
            id: self.id.clone(),
            digest: self.digest,
            value: self.value.clone().unwrap_or_default(),
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    quarantined: AtomicU64,
    wal_appends: AtomicU64,
    segment_reads: AtomicU64,
    compactions: AtomicU64,
    recovered_records: AtomicU64,
    truncated_tail_bytes: AtomicU64,
    trace_hits: AtomicU64,
    trace_misses: AtomicU64,
    trace_stores: AtomicU64,
}

#[derive(Debug)]
struct Inner {
    mem: HashMap<u128, MemRec>,
    manifest: Manifest,
}

#[derive(Debug)]
struct Shared {
    dir: PathBuf,
    opts: LsmOptions,
    wal: Wal,
    // Lock order: `inner` before `view` before `poisoned`.
    inner: Mutex<Inner>,
    view: Mutex<Arc<Vec<Arc<Segment>>>>,
    poisoned: Mutex<std::collections::HashSet<u128>>,
    epoch: AtomicU64,
    counters: Counters,
    compacting: AtomicBool,
}

/// The LSM-lite store handle.
#[derive(Debug)]
pub struct LsmStore {
    shared: Arc<Shared>,
    compact_handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl LsmStore {
    /// Opens (creating or recovering) a store at `dir` with default
    /// options.
    ///
    /// # Errors
    ///
    /// Returns IO errors that recovery cannot absorb (directory
    /// creation, unreadable WAL file).
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<LsmStore> {
        Self::open_with(dir, LsmOptions::default())
    }

    /// Opens with explicit [`LsmOptions`].
    ///
    /// # Errors
    ///
    /// As [`LsmStore::open`].
    pub fn open_with(dir: impl Into<PathBuf>, opts: LsmOptions) -> io::Result<LsmStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let qdir = dir.join("quarantine");
        let counters = Counters::default();

        // 1. The manifest: load, or quarantine + rebuild by scan.
        let current = dir.join(CURRENT);
        let (mut manifest, rebuilt) = match Manifest::load(&current) {
            Ok(Some(m)) => (m, false),
            Ok(None) => (
                Manifest {
                    epoch: 0,
                    next_segment: 1,
                    segments: Vec::new(),
                },
                false,
            ),
            Err(e) => {
                eprintln!(
                    "[scu-store] corrupt manifest at {}: {e}; rebuilding from directory",
                    current.display()
                );
                counters.quarantined.fetch_add(1, Ordering::Relaxed);
                let _ = quarantine::quarantine_move(&qdir, &current, opts.quarantine_cap);
                (Manifest::rebuild_from_dir(&dir), true)
            }
        };

        // 2. Open the live segments; quarantine files that fail
        //    structural validation, delete strays from interrupted
        //    flushes.
        let mut segments: Vec<Arc<Segment>> = Vec::new();
        let mut kept = Vec::new();
        for name in &manifest.segments {
            let path = dir.join(name);
            match Segment::open(&path) {
                Ok(seg) => {
                    segments.push(Arc::new(seg));
                    kept.push(name.clone());
                }
                Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                    eprintln!(
                        "[scu-store] quarantined corrupt segment {} ({e})",
                        path.display()
                    );
                    counters.quarantined.fetch_add(1, Ordering::Relaxed);
                    let _ = quarantine::quarantine_move(&qdir, &path, opts.quarantine_cap);
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    eprintln!("[scu-store] missing segment {}; dropped", path.display());
                }
                Err(e) => return Err(e),
            }
        }
        let manifest_changed = rebuilt || kept.len() != manifest.segments.len();
        manifest.segments = kept;
        if let Ok(entries) = std::fs::read_dir(&dir) {
            for entry in entries.filter_map(Result::ok) {
                let name = entry.file_name().to_str().unwrap_or_default().to_string();
                if crate::manifest::parse_segment_id(&name).is_some()
                    && !manifest.segments.contains(&name)
                {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }

        // 3. The WAL: recover the intact prefix, truncate the tail.
        let (wal, recovery) = Wal::open(&dir.join("wal.log"), &qdir, opts.quarantine_cap)?;
        counters
            .recovered_records
            .fetch_add(recovery.records.len() as u64, Ordering::Relaxed);
        counters
            .truncated_tail_bytes
            .fetch_add(recovery.truncated_tail_bytes, Ordering::Relaxed);
        if recovery.quarantined_file {
            counters.quarantined.fetch_add(1, Ordering::Relaxed);
        }

        // 4. Rebuild the memtable and the current epoch.
        let mut epoch = manifest.epoch;
        if rebuilt {
            for seg in &segments {
                for (_, rec) in seg.iter() {
                    if let Ok(rec) = rec {
                        epoch = epoch.max(rec.epoch);
                    }
                }
            }
        }
        let mut mem: HashMap<u128, MemRec> = HashMap::new();
        for rec in &recovery.records {
            epoch = epoch.max(rec.epoch);
            if rec.kind == RecordKind::Epoch {
                continue;
            }
            mem.entry(rec.addr()).or_default().absorb(rec);
        }
        // Persist the manifest when it changed — and always on first
        // open, so the directory self-identifies as an LSM store (the
        // `CURRENT` file is what `open_dir` auto-detection keys on)
        // even before the first flush writes a segment.
        if manifest_changed || !current.exists() {
            manifest.store(&current)?;
        }

        let flush_now = mem.len() >= opts.flush_records;
        let store = LsmStore {
            shared: Arc::new(Shared {
                dir,
                opts,
                wal,
                inner: Mutex::new(Inner { mem, manifest }),
                view: Mutex::new(Arc::new(segments)),
                poisoned: Mutex::new(std::collections::HashSet::new()),
                epoch: AtomicU64::new(epoch),
                counters,
                compacting: AtomicBool::new(false),
            }),
            compact_handle: Mutex::new(None),
        };
        if flush_now {
            if let Err(e) = store.do_flush() {
                eprintln!("[scu-store] flush on open failed: {e}; keeping records in the WAL");
            }
        }
        Ok(store)
    }

    /// The current sweep epoch (for tests and diagnostics).
    pub fn current_epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Relaxed)
    }

    /// Number of live segment files.
    pub fn segment_count(&self) -> usize {
        lock(&self.shared.view).len()
    }

    fn snapshot(&self) -> Arc<Vec<Arc<Segment>>> {
        Arc::clone(&lock(&self.shared.view))
    }

    /// Looks for an intact record at `addr` in the segment stack,
    /// newest first. Corrupt records are quarantined, poisoned and
    /// reported as `Err(())`.
    fn segment_lookup(&self, addr: u128, rk: &str) -> Result<Option<MemRec>, ()> {
        let shared = &self.shared;
        let mut merged: Option<MemRec> = None;
        for seg in self.snapshot().iter().rev() {
            let Some(found) = seg.get(addr) else {
                continue;
            };
            shared
                .counters
                .segment_reads
                .fetch_add(1, Ordering::Relaxed);
            match found {
                Ok(rec) if rec.rk == rk => {
                    let slot = merged.get_or_insert_with(MemRec::default);
                    // Newest-first iteration: only fill holes, never
                    // overwrite what a newer segment said.
                    let mut older = MemRec::default();
                    older.absorb(&rec);
                    if slot.rk.is_empty() {
                        slot.rk = older.rk;
                    }
                    if slot.id.is_empty() {
                        slot.id = older.id;
                    }
                    if slot.digest.is_none() {
                        slot.digest = older.digest;
                    }
                    slot.epoch = slot.epoch.max(older.epoch);
                    if slot.value.is_none() {
                        slot.value = older.value;
                        slot.trace = older.trace;
                    }
                    if slot.value.is_some() {
                        return Ok(merged);
                    }
                }
                Ok(rec) => {
                    // An address collision or a record written for a
                    // different key: never serve it.
                    self.poison(addr, seg, &format!("resume-key mismatch ({})", rec.rk));
                    return Err(());
                }
                Err(reason) => {
                    self.poison(addr, seg, &reason);
                    return Err(());
                }
            }
        }
        Ok(merged)
    }

    fn poison(&self, addr: u128, seg: &Segment, reason: &str) {
        let shared = &self.shared;
        shared.counters.quarantined.fetch_add(1, Ordering::Relaxed);
        lock(&shared.poisoned).insert(addr);
        let qdir = self.quarantine_dir();
        let name = format!("{addr:032x}.rec");
        let outcome = match seg.raw_frame(addr) {
            Some(bytes) => {
                quarantine::quarantine_bytes(&qdir, &name, bytes, shared.opts.quarantine_cap)
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "frame not found")),
        };
        match outcome {
            Ok(dest) => eprintln!(
                "[scu-store] quarantined corrupt record {addr:032x} from {} -> {} ({reason})",
                seg.path().display(),
                dest.display()
            ),
            Err(e) => eprintln!(
                "[scu-store] corrupt record {addr:032x} in {} ({reason}); quarantine failed: {e}",
                seg.path().display()
            ),
        }
    }

    fn append_wal(&self, rec: &Record) -> io::Result<()> {
        self.shared.wal.append(rec)?;
        self.shared
            .counters
            .wal_appends
            .fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Flushes the memtable into a new segment and resets the WAL.
    fn do_flush(&self) -> io::Result<()> {
        failpoints::io("segment-flush")?;
        let shared = &self.shared;
        let compact_after;
        {
            let mut inner = lock(&shared.inner);
            if inner.mem.is_empty() {
                return Ok(());
            }
            let mut records: Vec<(u128, Record)> = inner
                .mem
                .iter()
                .map(|(addr, mem)| (*addr, mem.to_record()))
                .collect();
            let id = inner.manifest.next_segment;
            let name = segment_file_name(id);
            let path = shared.dir.join(&name);
            Segment::write(&path, &mut records)?;
            let seg = Arc::new(Segment::open(&path)?);
            inner.manifest.next_segment = id + 1;
            inner.manifest.segments.push(name);
            inner.manifest.epoch = shared.epoch.load(Ordering::Relaxed);
            inner.manifest.store(&shared.dir.join(CURRENT))?;
            {
                let mut view = lock(&shared.view);
                let mut next = (**view).clone();
                next.push(seg);
                *view = Arc::new(next);
            }
            shared.wal.reset()?;
            inner.mem.clear();
            compact_after = inner.manifest.segments.len() >= shared.opts.compact_min_segments;
        }
        if compact_after {
            self.trigger_compaction();
        }
        Ok(())
    }

    fn maybe_flush(&self) {
        let over = lock(&self.shared.inner).mem.len() >= self.shared.opts.flush_records;
        if over {
            if let Err(e) = self.do_flush() {
                eprintln!("[scu-store] segment flush failed: {e}; keeping records in the WAL");
            }
        }
    }

    fn trigger_compaction(&self) {
        let shared = &self.shared;
        if shared
            .compacting
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return;
        }
        let mut guard = lock(&self.compact_handle);
        if let Some(handle) = guard.take() {
            let _ = handle.join();
        }
        let cloned = Arc::clone(shared);
        *guard = Some(
            std::thread::Builder::new()
                .name("scu-store-compact".into())
                .spawn(move || compact_once(&cloned))
                .expect("spawning the compaction thread cannot fail"),
        );
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// One background compaction pass over `shared`'s current segments.
fn compact_once(shared: &Arc<Shared>) {
    let done = || shared.compacting.store(false, Ordering::SeqCst);
    if failpoints::io("compact").is_err() {
        eprintln!("[scu-store] compaction aborted by failpoint");
        done();
        return;
    }
    // Snapshot the segments to merge; readers keep using this exact
    // Arc while we work, and segments flushed after this point are
    // simply left out of the merge.
    let snapshot = Arc::clone(&lock(&shared.view));
    if snapshot.len() < 2 {
        done();
        return;
    }
    // Merge oldest→newest so later records win; epoch max-merge keeps
    // resume correct even if list order is ever reconstructed.
    let mut merged: HashMap<u128, MemRec> = HashMap::new();
    for seg in snapshot.iter() {
        for (addr, rec) in seg.iter() {
            match rec {
                Ok(rec) => merged.entry(addr).or_default().absorb(&rec),
                Err(reason) => {
                    // Superseded-or-corrupt records do not survive
                    // compaction; keep the evidence, drop the record.
                    shared.counters.quarantined.fetch_add(1, Ordering::Relaxed);
                    let name = format!("{addr:032x}.rec");
                    if let Some(bytes) = seg.raw_frame(addr) {
                        let _ = quarantine::quarantine_bytes(
                            &shared.dir.join("quarantine"),
                            &name,
                            bytes,
                            shared.opts.quarantine_cap,
                        );
                    }
                    eprintln!(
                        "[scu-store] compaction dropped corrupt record {addr:032x} from {} ({reason})",
                        seg.path().display()
                    );
                }
            }
        }
    }
    let mut records: Vec<(u128, Record)> = merged
        .iter()
        .map(|(addr, mem)| (*addr, mem.to_record()))
        .collect();
    let old_paths: Vec<PathBuf> = snapshot.iter().map(|s| s.path().to_path_buf()).collect();
    let old_names: Vec<String> = old_paths
        .iter()
        .filter_map(|p| p.file_name().and_then(|n| n.to_str()).map(str::to_string))
        .collect();

    // Reserve an id, write the merged segment, then swap it in under
    // the lock — prepended so age ordering stays oldest-first.
    let id = {
        let mut inner = lock(&shared.inner);
        let id = inner.manifest.next_segment;
        inner.manifest.next_segment = id + 1;
        id
    };
    let name = segment_file_name(id);
    let path = shared.dir.join(&name);
    if let Err(e) = Segment::write(&path, &mut records) {
        eprintln!("[scu-store] compaction write failed: {e}; keeping existing segments");
        let _ = std::fs::remove_file(&path);
        done();
        return;
    }
    let seg = match Segment::open(&path) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("[scu-store] compacted segment failed validation: {e}; discarded");
            let _ = std::fs::remove_file(&path);
            done();
            return;
        }
    };
    {
        let mut inner = lock(&shared.inner);
        let late: Vec<String> = inner
            .manifest
            .segments
            .iter()
            .filter(|n| !old_names.contains(n))
            .cloned()
            .collect();
        inner.manifest.segments = std::iter::once(name).chain(late).collect();
        if let Err(e) = inner.manifest.store(&shared.dir.join(CURRENT)) {
            eprintln!("[scu-store] compaction manifest swap failed: {e}; keeping old segments");
            let _ = std::fs::remove_file(&path);
            done();
            return;
        }
        let mut view = lock(&shared.view);
        let late_segs: Vec<Arc<Segment>> = view
            .iter()
            .filter(|s| !old_paths.contains(&s.path().to_path_buf()))
            .cloned()
            .collect();
        *view = Arc::new(std::iter::once(seg).chain(late_segs).collect());
        lock(&shared.poisoned).clear();
    }
    for path in old_paths {
        let _ = std::fs::remove_file(path);
    }
    shared.counters.compactions.fetch_add(1, Ordering::Relaxed);
    done();
}

impl Drop for LsmStore {
    fn drop(&mut self) {
        if let Some(handle) = lock(&self.compact_handle).take() {
            let _ = handle.join();
        }
    }
}

impl ResultStore for LsmStore {
    fn dir(&self) -> &Path {
        &self.shared.dir
    }

    fn quarantine_dir(&self) -> PathBuf {
        self.shared.dir.join("quarantine")
    }

    fn backend_name(&self) -> &'static str {
        "lsm"
    }

    fn unified_journal(&self) -> bool {
        true
    }

    fn get(&self, key: &Value) -> GetResult {
        let shared = &self.shared;
        if failpoints::io("cache-load").is_err() {
            shared.counters.misses.fetch_add(1, Ordering::Relaxed);
            return GetResult::Miss;
        }
        let rk = JournalRecord::resume_key(Some(key), "");
        let addr = crate::hash::stable_addr(rk.as_bytes());
        let from_mem = lock(&shared.inner)
            .mem
            .get(&addr)
            .filter(|m| m.rk == rk)
            .and_then(|m| m.value.clone());
        let value_bytes = match from_mem {
            Some(bytes) => Some(bytes),
            None => {
                if lock(&shared.poisoned).contains(&addr) {
                    shared.counters.misses.fetch_add(1, Ordering::Relaxed);
                    return GetResult::Miss;
                }
                match self.segment_lookup(addr, &rk) {
                    Ok(found) => found.and_then(|m| m.value),
                    Err(()) => {
                        shared.counters.misses.fetch_add(1, Ordering::Relaxed);
                        return GetResult::Corrupt;
                    }
                }
            }
        };
        match value_bytes {
            Some(bytes) => match parse_value(&bytes) {
                Some(value) => {
                    shared.counters.hits.fetch_add(1, Ordering::Relaxed);
                    GetResult::Hit(value)
                }
                None => {
                    // CRC held but the payload is not JSON: a writer
                    // bug, not bit rot. Do not serve it.
                    shared.counters.misses.fetch_add(1, Ordering::Relaxed);
                    lock(&shared.poisoned).insert(addr);
                    GetResult::Corrupt
                }
            },
            None => {
                shared.counters.misses.fetch_add(1, Ordering::Relaxed);
                GetResult::Miss
            }
        }
    }

    fn put(&self, key: &Value, value: &Value) -> io::Result<()> {
        failpoints::io("cache-store")?;
        let shared = &self.shared;
        let rk = JournalRecord::resume_key(Some(key), "");
        let addr = crate::hash::stable_addr(rk.as_bytes());
        let epoch = shared.epoch.load(Ordering::Relaxed);
        {
            let mut inner = lock(&shared.inner);
            if inner
                .mem
                .get(&addr)
                .is_some_and(|m| m.rk == rk && m.value.is_some() && m.epoch >= epoch)
            {
                // Same sweep already stored this value; identical by
                // the determinism contract, so skip the duplicate.
                shared.counters.stores.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            let rec = Record {
                kind: RecordKind::Put,
                epoch,
                rk,
                id: String::new(),
                digest: None,
                value: serde_json::to_string(value)
                    .expect("serialising a Value cannot fail")
                    .into_bytes(),
            };
            self.append_wal(&rec)?;
            inner.mem.entry(addr).or_default().absorb(&rec);
        }
        // A fresh value supersedes any poisoned history at this
        // address.
        lock(&shared.poisoned).remove(&addr);
        shared.counters.stores.fetch_add(1, Ordering::Relaxed);
        self.maybe_flush();
        Ok(())
    }

    fn get_trace(&self, key: &str) -> TraceGet {
        let shared = &self.shared;
        let rk = format!("trace:{key}");
        let addr = crate::hash::stable_addr(rk.as_bytes());
        let from_mem = lock(&shared.inner)
            .mem
            .get(&addr)
            .filter(|m| m.rk == rk && m.value.is_some())
            .map(|m| (m.value.clone().unwrap_or_default(), m.digest));
        let found = match from_mem {
            Some(found) => Some(found),
            None => {
                if lock(&shared.poisoned).contains(&addr) {
                    shared.counters.trace_misses.fetch_add(1, Ordering::Relaxed);
                    return TraceGet::Miss;
                }
                match self.segment_lookup(addr, &rk) {
                    Ok(found) => found
                        .filter(|m| m.value.is_some())
                        .map(|m| (m.value.unwrap_or_default(), m.digest)),
                    Err(()) => {
                        shared.counters.trace_misses.fetch_add(1, Ordering::Relaxed);
                        return TraceGet::Corrupt;
                    }
                }
            }
        };
        match found {
            Some((bytes, Some(d))) if crate::hash::fnv64(&bytes) == d => {
                shared.counters.trace_hits.fetch_add(1, Ordering::Relaxed);
                TraceGet::Hit(bytes)
            }
            Some(_) => {
                // The frame CRC held but the payload digest does not
                // match (or was never written): a writer bug, not bit
                // rot. Poison the address; a fresh store supersedes.
                shared.counters.trace_misses.fetch_add(1, Ordering::Relaxed);
                lock(&shared.poisoned).insert(addr);
                TraceGet::Corrupt
            }
            None => {
                shared.counters.trace_misses.fetch_add(1, Ordering::Relaxed);
                TraceGet::Miss
            }
        }
    }

    fn put_trace(&self, key: &str, bytes: &[u8]) -> io::Result<()> {
        let shared = &self.shared;
        let rk = format!("trace:{key}");
        let addr = crate::hash::stable_addr(rk.as_bytes());
        let epoch = shared.epoch.load(Ordering::Relaxed);
        let digest = crate::hash::fnv64(bytes);
        {
            let mut inner = lock(&shared.inner);
            if inner
                .mem
                .get(&addr)
                .is_some_and(|m| m.rk == rk && m.value.is_some() && m.digest == Some(digest))
            {
                // Traces are a pure function of the semantic key, so
                // an identical in-memory copy makes this a no-op.
                shared.counters.trace_stores.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            let rec = Record {
                kind: RecordKind::Trace,
                epoch,
                rk,
                id: String::new(),
                digest: Some(digest),
                value: bytes.to_vec(),
            };
            self.append_wal(&rec)?;
            inner.mem.entry(addr).or_default().absorb(&rec);
        }
        // A fresh trace supersedes any poisoned history here, exactly
        // like a fresh put.
        lock(&shared.poisoned).remove(&addr);
        shared.counters.trace_stores.fetch_add(1, Ordering::Relaxed);
        self.maybe_flush();
        Ok(())
    }

    fn journal_append(&self, rec: &JournalRecord) -> io::Result<()> {
        failpoints::io("journal-append")?;
        let shared = &self.shared;
        let rk = JournalRecord::resume_key(rec.key.as_ref(), &rec.id);
        let addr = crate::hash::stable_addr(rk.as_bytes());
        let epoch = shared.epoch.load(Ordering::Relaxed);
        enum MemProbe {
            AlreadyJournaled,
            HasValue,
            MarkOnly,
            Absent,
        }
        let probe = {
            let inner = lock(&shared.inner);
            match inner.mem.get(&addr) {
                Some(m) if m.rk == rk => {
                    if m.epoch >= epoch && m.id == rec.id && m.digest == rec.digest {
                        MemProbe::AlreadyJournaled
                    } else if m.value.is_some() {
                        MemProbe::HasValue
                    } else {
                        MemProbe::MarkOnly
                    }
                }
                _ => MemProbe::Absent,
            }
        };
        let value_exists = match probe {
            // Exactly this completion is already journaled.
            MemProbe::AlreadyJournaled => return Ok(()),
            MemProbe::HasValue => true,
            // A Mark is only ever written over an existing Put, so a
            // mark-only memtable entry means the value is in a segment.
            MemProbe::MarkOnly => true,
            MemProbe::Absent => matches!(
                self.segment_lookup(addr, &rk),
                Ok(Some(m)) if m.value.is_some()
            ),
        };
        let wal_rec = if value_exists {
            Record {
                kind: RecordKind::Mark,
                epoch,
                rk,
                id: rec.id.clone(),
                digest: rec.digest,
                value: Vec::new(),
            }
        } else {
            Record {
                kind: RecordKind::Put,
                epoch,
                rk,
                id: rec.id.clone(),
                digest: rec.digest,
                value: serde_json::to_string(&rec.value)
                    .expect("serialising a Value cannot fail")
                    .into_bytes(),
            }
        };
        {
            let mut inner = lock(&shared.inner);
            self.append_wal(&wal_rec)?;
            inner.mem.entry(addr).or_default().absorb(&wal_rec);
        }
        self.maybe_flush();
        Ok(())
    }

    fn begin_sweep(&self, resume: bool) -> io::Result<()> {
        if resume {
            // Resuming continues the interrupted sweep's epoch.
            return Ok(());
        }
        let shared = &self.shared;
        let next = shared.epoch.load(Ordering::Relaxed) + 1;
        let _inner = lock(&shared.inner);
        self.append_wal(&Record::epoch(next))?;
        shared.epoch.store(next, Ordering::Relaxed);
        Ok(())
    }

    fn resume_state(&self) -> io::Result<ResumeState> {
        let shared = &self.shared;
        let current = shared.epoch.load(Ordering::Relaxed);
        let mut merged: HashMap<u128, MemRec> = HashMap::new();
        for seg in self.snapshot().iter() {
            for (addr, rec) in seg.iter() {
                if let Ok(rec) = rec {
                    merged.entry(addr).or_default().absorb(&rec);
                }
            }
        }
        {
            let inner = lock(&shared.inner);
            for (addr, mem) in &inner.mem {
                let slot = merged.entry(*addr).or_default();
                slot.epoch = slot.epoch.max(mem.epoch);
                if !mem.rk.is_empty() {
                    slot.rk = mem.rk.clone();
                }
                if !mem.id.is_empty() {
                    slot.id = mem.id.clone();
                }
                if mem.digest.is_some() {
                    slot.digest = mem.digest;
                }
                if mem.value.is_some() {
                    slot.value = mem.value.clone();
                    slot.trace = mem.trace;
                }
            }
        }
        let poisoned = lock(&shared.poisoned).clone();
        let mut state = ResumeState::default();
        for (addr, mem) in merged {
            if mem.epoch != current || poisoned.contains(&addr) {
                continue;
            }
            // Trace records are cache content keyed by semantic key,
            // not sweep progress — they never resume as completions.
            if mem.trace {
                continue;
            }
            let Some(bytes) = &mem.value else { continue };
            let Some(value) = parse_value(bytes) else {
                continue;
            };
            if let Some(d) = mem.digest {
                if !mem.id.is_empty() {
                    state.digests.insert(mem.id.clone(), d);
                }
            }
            state.values.insert(mem.rk, value);
        }
        Ok(state)
    }

    fn stats(&self) -> StoreStats {
        let c = &self.shared.counters;
        StoreStats {
            hits: c.hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            stores: c.stores.load(Ordering::Relaxed),
            quarantined: c.quarantined.load(Ordering::Relaxed),
            quarantined_total: quarantine::retained(&self.quarantine_dir()),
            wal_appends: c.wal_appends.load(Ordering::Relaxed),
            segment_reads: c.segment_reads.load(Ordering::Relaxed),
            compactions: c.compactions.load(Ordering::Relaxed),
            recovered_records: c.recovered_records.load(Ordering::Relaxed),
            truncated_tail_bytes: c.truncated_tail_bytes.load(Ordering::Relaxed),
            trace_hits: c.trace_hits.load(Ordering::Relaxed),
            trace_misses: c.trace_misses.load(Ordering::Relaxed),
            trace_stores: c.trace_stores.load(Ordering::Relaxed),
            backend: self.backend_name(),
        }
    }

    fn flush(&self) -> io::Result<()> {
        self.do_flush()
    }
}

fn parse_value(bytes: &[u8]) -> Option<Value> {
    let text = std::str::from_utf8(bytes).ok()?;
    serde_json::from_str(text).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("scu-store-lsm-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn key(n: u64) -> Value {
        Value::Object(vec![("cell".into(), Value::U64(n))])
    }

    fn small_opts() -> LsmOptions {
        LsmOptions {
            flush_records: 4,
            compact_min_segments: 3,
            quarantine_cap: 8,
        }
    }

    fn journal_rec(n: u64) -> JournalRecord {
        JournalRecord {
            key: Some(key(n)),
            id: format!("cell-{n}"),
            value: Value::U64(n * 10),
            digest: Some(n * 1000),
        }
    }

    #[test]
    fn puts_round_trip_through_wal_reopen_and_segments() {
        let dir = scratch("round");
        {
            let store = LsmStore::open(&dir).unwrap();
            store.begin_sweep(false).unwrap();
            for n in 0..6 {
                store.put(&key(n), &Value::U64(n)).unwrap();
            }
            assert!(matches!(store.get(&key(3)), GetResult::Hit(Value::U64(3))));
        }
        // Reopen: everything still in the WAL.
        {
            let store = LsmStore::open(&dir).unwrap();
            assert_eq!(store.stats().recovered_records, 7, "epoch + 6 puts");
            assert!(matches!(store.get(&key(5)), GetResult::Hit(Value::U64(5))));
            store.flush().unwrap();
            assert_eq!(store.segment_count(), 1);
            assert!(matches!(store.get(&key(2)), GetResult::Hit(Value::U64(2))));
            assert!(store.stats().segment_reads > 0);
        }
        // Reopen again: WAL is empty, reads come from the segment.
        {
            let store = LsmStore::open(&dir).unwrap();
            assert_eq!(store.stats().recovered_records, 0);
            for n in 0..6 {
                assert!(matches!(store.get(&key(n)), GetResult::Hit(Value::U64(v)) if v == n));
            }
            assert!(matches!(store.get(&key(99)), GetResult::Miss));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_appends_resume_at_the_current_epoch_only() {
        let dir = scratch("epochs");
        let store = LsmStore::open(&dir).unwrap();
        store.begin_sweep(false).unwrap();
        store.journal_append(&journal_rec(1)).unwrap();
        store.journal_append(&journal_rec(2)).unwrap();
        let state = store.resume_state().unwrap();
        assert_eq!(state.values.len(), 2);
        assert_eq!(state.digests.get("cell-1"), Some(&1000));

        // A new sweep logically truncates: nothing resumes…
        store.begin_sweep(false).unwrap();
        assert!(store.resume_state().unwrap().values.is_empty());
        // …but the values are still cache hits.
        assert!(matches!(store.get(&key(1)), GetResult::Hit(Value::U64(10))));

        // Completing a cell in the new sweep journals a small Mark
        // (the value already being on disk), and resume sees it.
        store.journal_append(&journal_rec(1)).unwrap();
        let state = store.resume_state().unwrap();
        assert_eq!(state.values.len(), 1);
        assert_eq!(
            state
                .values
                .get(&JournalRecord::resume_key(Some(&key(1)), "cell-1")),
            Some(&Value::U64(10))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn epoch_semantics_survive_flush_and_reopen() {
        let dir = scratch("epoch-flush");
        {
            let store = LsmStore::open_with(&dir, small_opts()).unwrap();
            store.begin_sweep(false).unwrap();
            for n in 0..10 {
                store.journal_append(&journal_rec(n)).unwrap();
            }
            assert!(store.segment_count() >= 1, "threshold 4 forced flushes");
        }
        let store = LsmStore::open_with(&dir, small_opts()).unwrap();
        assert_eq!(store.current_epoch(), 1);
        let state = store.resume_state().unwrap();
        assert_eq!(state.values.len(), 10, "all ten journaled cells resume");
        for n in 0..10 {
            assert!(matches!(store.get(&key(n)), GetResult::Hit(Value::U64(v)) if v == n * 10));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncacheable_records_resume_by_id() {
        let dir = scratch("by-id");
        let store = LsmStore::open(&dir).unwrap();
        store.begin_sweep(false).unwrap();
        store
            .journal_append(&JournalRecord {
                key: None,
                id: "plain".into(),
                value: Value::Bool(true),
                digest: None,
            })
            .unwrap();
        let state = store.resume_state().unwrap();
        assert_eq!(state.values.get("id:plain"), Some(&Value::Bool(true)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_sweep_journals_marks_not_values() {
        let dir = scratch("marks");
        let store = LsmStore::open(&dir).unwrap();
        store.begin_sweep(false).unwrap();
        store.journal_append(&journal_rec(1)).unwrap();
        let wal_after_put = std::fs::metadata(dir.join("wal.log")).unwrap().len();
        store.begin_sweep(false).unwrap();
        store.journal_append(&journal_rec(1)).unwrap();
        let wal_after_mark = std::fs::metadata(dir.join("wal.log")).unwrap().len();
        let value_len = serde_json::to_string(&journal_rec(1).value).unwrap().len() as u64;
        assert!(
            wal_after_mark - wal_after_put < wal_after_put,
            "mark + epoch ({} bytes) smaller than the original put ({wal_after_put})",
            wal_after_mark - wal_after_put
        );
        let _ = value_len;
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_merges_supersedes_and_keeps_reads_correct() {
        let dir = scratch("compact");
        let store = LsmStore::open_with(&dir, small_opts()).unwrap();
        store.begin_sweep(false).unwrap();
        // Three sweeps over the same cells → repeated marks and puts
        // across enough segments to trip compaction.
        for sweep in 0..3 {
            if sweep > 0 {
                store.begin_sweep(false).unwrap();
            }
            for n in 0..8 {
                store.journal_append(&journal_rec(n)).unwrap();
            }
        }
        // Wait for any background pass to land.
        if let Some(h) = lock(&store.compact_handle).take() {
            h.join().unwrap();
        }
        let stats = store.stats();
        assert!(stats.compactions >= 1, "compaction ran: {stats:?}");
        for n in 0..8 {
            assert!(matches!(store.get(&key(n)), GetResult::Hit(Value::U64(v)) if v == n * 10));
        }
        let state = store.resume_state().unwrap();
        assert_eq!(state.values.len(), 8, "latest epoch fully resumable");
        // And the compacted layout survives a cold reopen.
        drop(store);
        let store = LsmStore::open_with(&dir, small_opts()).unwrap();
        for n in 0..8 {
            assert!(matches!(store.get(&key(n)), GetResult::Hit(Value::U64(v)) if v == n * 10));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_segment_record_is_quarantined_poisoned_and_superseded() {
        let dir = scratch("poison");
        let store = LsmStore::open(&dir).unwrap();
        store.begin_sweep(false).unwrap();
        for n in 0..4 {
            store.put(&key(n), &Value::U64(n)).unwrap();
        }
        store.flush().unwrap();
        drop(store);
        // Flip a byte inside the newest segment's frame region.
        let seg_path = dir.join(segment_file_name(1));
        let mut bytes = std::fs::read(&seg_path).unwrap();
        // Find the victim by corrupting each record position until one
        // read fails; frames start after the 16-byte header.
        bytes[30] ^= 0x20;
        std::fs::write(&seg_path, &bytes).unwrap();
        let store = LsmStore::open(&dir).unwrap();
        let mut corrupted = None;
        for n in 0..4 {
            if matches!(store.get(&key(n)), GetResult::Corrupt) {
                corrupted = Some(n);
                break;
            }
        }
        let victim = corrupted.expect("one record must read corrupt");
        assert!(store.stats().quarantined >= 1);
        assert!(store.stats().quarantined_total >= 1);
        // Poisoned: repeat reads miss without re-quarantining.
        let before = store.stats().quarantined;
        assert!(matches!(store.get(&key(victim)), GetResult::Miss));
        assert_eq!(store.stats().quarantined, before);
        // A fresh put supersedes the poisoned address.
        store.put(&key(victim), &Value::U64(victim)).unwrap();
        assert!(matches!(store.get(&key(victim)), GetResult::Hit(Value::U64(v)) if v == victim));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_is_rebuilt_from_directory() {
        let dir = scratch("manifest");
        {
            let store = LsmStore::open(&dir).unwrap();
            store.begin_sweep(false).unwrap();
            for n in 0..5 {
                store.put(&key(n), &Value::U64(n)).unwrap();
            }
            store.flush().unwrap();
        }
        std::fs::write(dir.join(CURRENT), "scrambled eggs").unwrap();
        let store = LsmStore::open(&dir).unwrap();
        for n in 0..5 {
            assert!(matches!(store.get(&key(n)), GetResult::Hit(Value::U64(v)) if v == n));
        }
        assert!(
            store.stats().quarantined >= 1,
            "old CURRENT kept as evidence"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn traces_round_trip_through_wal_flush_and_reopen() {
        let dir = scratch("traces");
        let blob: Vec<u8> = (0..=255u8).cycle().take(700).collect();
        {
            let store = LsmStore::open(&dir).unwrap();
            store.put_trace("sem-key-1", &blob).unwrap();
            assert_eq!(store.get_trace("sem-key-1"), TraceGet::Hit(blob.clone()));
            assert_eq!(store.get_trace("sem-key-2"), TraceGet::Miss);
            let stats = store.stats();
            assert_eq!(
                (stats.trace_hits, stats.trace_misses, stats.trace_stores),
                (1, 1, 1)
            );
        }
        // Reopen from the WAL, then force the trace into a segment.
        {
            let store = LsmStore::open(&dir).unwrap();
            assert_eq!(store.get_trace("sem-key-1"), TraceGet::Hit(blob.clone()));
            store.flush().unwrap();
            assert_eq!(store.get_trace("sem-key-1"), TraceGet::Hit(blob.clone()));
        }
        // Reopen again: the read comes from the mmap'd segment.
        let store = LsmStore::open(&dir).unwrap();
        assert_eq!(store.stats().recovered_records, 0);
        assert_eq!(store.get_trace("sem-key-1"), TraceGet::Hit(blob));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn traces_and_results_share_the_store_without_collisions() {
        let dir = scratch("trace-mix");
        let store = LsmStore::open_with(&dir, small_opts()).unwrap();
        store.begin_sweep(false).unwrap();
        for n in 0..6 {
            store.journal_append(&journal_rec(n)).unwrap();
            store
                .put_trace(&format!("sem-{n}"), &[n as u8; 64])
                .unwrap();
        }
        // Interleaved writes crossed the flush threshold; everything
        // still reads back, and compaction preserves both kinds.
        if let Some(h) = lock(&store.compact_handle).take() {
            h.join().unwrap();
        }
        for n in 0..6 {
            assert!(matches!(store.get(&key(n)), GetResult::Hit(Value::U64(v)) if v == n * 10));
            assert_eq!(
                store.get_trace(&format!("sem-{n}")),
                TraceGet::Hit(vec![n as u8; 64])
            );
        }
        // Resume sees only the journaled cells, never the traces.
        let state = store.resume_state().unwrap();
        assert_eq!(state.values.len(), 6);
        assert!(state.values.keys().all(|k| !k.starts_with("trace:")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_trace_reads_corrupt_then_heals_on_rewrite() {
        let dir = scratch("trace-poison");
        let blob = vec![0xabu8; 600];
        {
            let store = LsmStore::open(&dir).unwrap();
            store.put_trace("hurt", &blob).unwrap();
            store.flush().unwrap();
        }
        // Flip a byte inside the segment's only frame: the payload is
        // large, so an offset past the headers lands in the blob.
        let seg_path = dir.join(segment_file_name(1));
        let mut bytes = std::fs::read(&seg_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&seg_path, &bytes).unwrap();
        let store = LsmStore::open(&dir).unwrap();
        assert_eq!(store.get_trace("hurt"), TraceGet::Corrupt);
        assert!(store.stats().quarantined >= 1, "evidence retained");
        // Poisoned: the repeat read is a cheap miss.
        assert_eq!(store.get_trace("hurt"), TraceGet::Miss);
        // A fresh recording supersedes the poisoned address.
        store.put_trace("hurt", &blob).unwrap();
        assert_eq!(store.get_trace("hurt"), TraceGet::Hit(blob));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_wal_tail_recovers_the_prefix() {
        let dir = scratch("torn");
        {
            let store = LsmStore::open(&dir).unwrap();
            store.begin_sweep(false).unwrap();
            for n in 0..3 {
                store.journal_append(&journal_rec(n)).unwrap();
            }
        }
        let wal = dir.join("wal.log");
        let bytes = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &bytes[..bytes.len() - 7]).unwrap();
        let store = LsmStore::open(&dir).unwrap();
        let stats = store.stats();
        assert!(stats.truncated_tail_bytes > 0);
        let state = store.resume_state().unwrap();
        assert_eq!(state.values.len(), 2, "torn third record dropped");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

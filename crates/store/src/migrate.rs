//! One-pass conversion of a legacy blob directory into an LSM store.
//!
//! `scu_store migrate --from results/cache --to results/cache.lsm`
//! reads every `<digest>.json` envelope (verifying it the same way the
//! cache would — corrupt blobs are skipped and counted, never carried
//! over) and, when given the old line journal, replays it so an
//! interrupted sweep stays resumable after the switch. The source
//! directory is never modified.

use std::io;
use std::path::Path;

use serde_json::Value;

use crate::legacy::LegacyStore;
use crate::lsm::LsmStore;
use crate::record::JournalRecord;
use crate::{manifest, ResultStore};

/// What a migration did.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MigrationReport {
    /// Cache entries carried over.
    pub entries: u64,
    /// Journal lines replayed (the interrupted sweep, if any).
    pub journaled: u64,
    /// Blobs or lines skipped as corrupt.
    pub skipped: u64,
}

/// Migrates the legacy layout at `from` into a (fresh or existing) LSM
/// store at `to`, optionally replaying the line journal at
/// `legacy_manifest`.
///
/// # Errors
///
/// Fails when `to` already holds a legacy layout, or on IO errors
/// opening/writing the destination. Corrupt *source* entries are
/// skipped and counted, not errors.
pub fn migrate(
    from: &Path,
    to: &Path,
    legacy_manifest: Option<&Path>,
) -> io::Result<MigrationReport> {
    if !to.join(manifest::CURRENT).exists() && has_blobs(to) {
        return Err(io::Error::new(
            io::ErrorKind::AlreadyExists,
            format!("{} already holds a legacy layout", to.display()),
        ));
    }
    let dest = LsmStore::open(to)?;
    let mut report = MigrationReport::default();

    let mut names: Vec<_> = std::fs::read_dir(from)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json") && p.is_file())
        .collect();
    names.sort();
    for path in names {
        match read_envelope(&path) {
            Some((key, value)) => {
                dest.put(&key, &value)?;
                report.entries += 1;
            }
            None => {
                eprintln!(
                    "[scu-store] migrate: skipping corrupt blob {}",
                    path.display()
                );
                report.skipped += 1;
            }
        }
    }

    if let Some(path) = legacy_manifest {
        let lines = journal_records(path)?;
        if !lines.0.is_empty() {
            // Replay as one sweep so the destination resumes exactly
            // where the legacy journal left off.
            dest.begin_sweep(false)?;
            for rec in &lines.0 {
                dest.journal_append(rec)?;
                report.journaled += 1;
            }
        }
        report.skipped += lines.1;
    }

    dest.flush()?;
    Ok(report)
}

fn has_blobs(dir: &Path) -> bool {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .any(|e| e.path().extension().is_some_and(|ext| ext == "json"))
        })
        .unwrap_or(false)
}

/// Reads and verifies one legacy envelope; `None` when it would not
/// have been served by the cache either.
fn read_envelope(path: &Path) -> Option<(Value, Value)> {
    let text = std::fs::read_to_string(path).ok()?;
    let envelope: Value = serde_json::from_str(&text).ok()?;
    let key = envelope.get("key")?.clone();
    let value = envelope.get("value")?.clone();
    let expect_name = format!("{}.json", LegacyStore::digest_of(&key));
    if path.file_name()?.to_str()? != expect_name {
        return None;
    }
    let canonical = serde_json::to_string(&value).ok()?;
    let check = crate::hash::stable_digest(canonical.as_bytes());
    if envelope.get("check").and_then(Value::as_str) != Some(&check) {
        return None;
    }
    Some((key, value))
}

/// Parses the intact prefix of a line journal; returns the records and
/// the count of discarded trailing lines.
fn journal_records(path: &Path) -> io::Result<(Vec<JournalRecord>, u64)> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => return Err(e),
    };
    let mut records = Vec::new();
    let mut discarded = 0u64;
    let mut torn = false;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        if torn {
            discarded += 1;
            continue;
        }
        let parsed = serde_json::from_str::<Value>(line)
            .map_err(|e| e.to_string())
            .and_then(|v| JournalRecord::from_value(&v));
        match parsed {
            Ok(rec) => records.push(rec),
            Err(_) => {
                torn = true;
                discarded += 1;
            }
        }
    }
    Ok((records, discarded))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GetResult;
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("scu-store-mig-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn key(n: u64) -> Value {
        Value::Object(vec![("cell".into(), Value::U64(n))])
    }

    #[test]
    fn migrates_blobs_and_journal_with_resume_parity() {
        let root = scratch("parity");
        let from = root.join("legacy");
        let to = root.join("lsm");
        let manifest_path = root.join("manifest.json");
        let legacy = LegacyStore::open(&from)
            .unwrap()
            .with_manifest(&manifest_path);
        legacy.begin_sweep(false).unwrap();
        for n in 0..10 {
            legacy.put(&key(n), &Value::U64(n * 10)).unwrap();
        }
        // Only half the sweep was journaled before the "crash".
        for n in 0..5 {
            legacy
                .journal_append(&JournalRecord {
                    key: Some(key(n)),
                    id: format!("cell-{n}"),
                    value: Value::U64(n * 10),
                    digest: Some(n),
                })
                .unwrap();
        }
        let legacy_resume = legacy.resume_state().unwrap();
        drop(legacy);

        let report = migrate(&from, &to, Some(&manifest_path)).unwrap();
        assert_eq!(report.entries, 10);
        assert_eq!(report.journaled, 5);
        assert_eq!(report.skipped, 0);

        let dest = LsmStore::open(&to).unwrap();
        for n in 0..10 {
            assert!(
                matches!(dest.get(&key(n)), GetResult::Hit(Value::U64(v)) if v == n * 10),
                "entry {n} survives migration"
            );
        }
        assert_eq!(
            dest.resume_state().unwrap(),
            legacy_resume,
            "resume state carries over exactly"
        );
        // And the source is untouched.
        let legacy = LegacyStore::open(&from).unwrap();
        assert!(matches!(legacy.get(&key(3)), GetResult::Hit(_)));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_blobs_and_torn_journal_lines_are_skipped() {
        let root = scratch("skips");
        let from = root.join("legacy");
        let to = root.join("lsm");
        let manifest_path = root.join("manifest.json");
        let legacy = LegacyStore::open(&from).unwrap();
        for n in 0..4 {
            legacy.put(&key(n), &Value::U64(n)).unwrap();
        }
        // Corrupt one blob on disk.
        let victim = from.join(format!("{}.json", LegacyStore::digest_of(&key(2))));
        std::fs::write(&victim, "garbage").unwrap();
        // A journal with a torn final line.
        std::fs::write(
            &manifest_path,
            "{\"key\":{\"cell\":0},\"id\":\"cell-0\",\"value\":0,\"digest\":1}\n{\"key\":{\"ce",
        )
        .unwrap();

        let report = migrate(&from, &to, Some(&manifest_path)).unwrap();
        assert_eq!(report.entries, 3);
        assert_eq!(report.journaled, 1);
        assert_eq!(report.skipped, 2, "one blob + one torn line");
        let dest = LsmStore::open(&to).unwrap();
        assert!(matches!(dest.get(&key(2)), GetResult::Miss), "not carried");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn refuses_to_migrate_onto_a_legacy_directory() {
        let root = scratch("refuse");
        let from = root.join("legacy");
        let legacy = LegacyStore::open(&from).unwrap();
        legacy.put(&key(1), &Value::U64(1)).unwrap();
        let err = migrate(&from, &from, None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        let _ = std::fs::remove_dir_all(&root);
    }
}

//! `scu_store` — inspect and migrate result-store directories.
//!
//! ```text
//! scu_store migrate --from DIR --to DIR [--manifest FILE]
//! scu_store stat DIR
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use scu_store::{migrate, open_dir};

const USAGE: &str = "usage:
  scu_store migrate --from DIR --to DIR [--manifest FILE]
      convert a legacy per-file cache (and optionally its line
      journal) into an LSM store; the source is never modified
  scu_store stat DIR
      show which backend a directory holds and its counters";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("migrate") => run_migrate(&args[1..]),
        Some("stat") => run_stat(&args[1..]),
        Some("--help" | "-h") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("scu_store: unknown command '{other}'\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_migrate(args: &[String]) -> ExitCode {
    let mut from = None;
    let mut to = None;
    let mut manifest = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |slot: &mut Option<PathBuf>| match it.next() {
            Some(v) => {
                *slot = Some(PathBuf::from(v));
                true
            }
            None => false,
        };
        let ok = match arg.as_str() {
            "--from" => take(&mut from),
            "--to" => take(&mut to),
            "--manifest" => take(&mut manifest),
            other => {
                eprintln!("scu_store migrate: unexpected argument '{other}'\n{USAGE}");
                return ExitCode::from(2);
            }
        };
        if !ok {
            eprintln!("scu_store migrate: {arg} needs a value\n{USAGE}");
            return ExitCode::from(2);
        }
    }
    let (Some(from), Some(to)) = (from, to) else {
        eprintln!("scu_store migrate: --from and --to are required\n{USAGE}");
        return ExitCode::from(2);
    };
    match migrate::migrate(&from, &to, manifest.as_deref()) {
        Ok(report) => {
            println!(
                "migrated {} entries ({} journaled, {} skipped) from {} to {}",
                report.entries,
                report.journaled,
                report.skipped,
                from.display(),
                to.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("scu_store migrate: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_stat(args: &[String]) -> ExitCode {
    let [dir] = args else {
        eprintln!("scu_store stat: exactly one directory expected\n{USAGE}");
        return ExitCode::from(2);
    };
    let dir = PathBuf::from(dir);
    match open_dir(&dir, None) {
        Ok(store) => {
            let stats = store.stats();
            println!("dir:                  {}", dir.display());
            println!("backend:              {}", stats.backend);
            println!("unified journal:      {}", store.unified_journal());
            println!("quarantined (kept):   {}", stats.quarantined_total);
            if stats.backend == "lsm" {
                println!("recovered records:    {}", stats.recovered_records);
                println!("truncated tail bytes: {}", stats.truncated_tail_bytes);
            }
            match store.resume_state() {
                Ok(state) => println!("resumable cells:      {}", state.values.len()),
                Err(e) => println!("resumable cells:      unreadable ({e})"),
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("scu_store stat: cannot open {}: {e}", dir.display());
            ExitCode::FAILURE
        }
    }
}

//! Turning event windows into energy numbers.

use scu_core::stats::ScuStats;
use scu_gpu::stats::KernelStats;
use scu_mem::stats::MemoryStats;
use serde::{Deserialize, Serialize};

use crate::constants::EnergyParams;

/// Energy of one measured window, split by consumer.
///
/// All fields are picojoules. `total_pj` = GPU dynamic + SCU dynamic +
/// DRAM dynamic + static.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// SM instructions + L1 + NoC + L2 traffic from GPU kernels.
    pub gpu_dynamic_pj: f64,
    /// SCU pipeline element-ops + hash probes + its NoC/L2 traffic.
    pub scu_dynamic_pj: f64,
    /// DRAM reads/writes/activations (both requesters).
    pub dram_dynamic_pj: f64,
    /// Static energy (GPU + DRAM background + SCU when present) over
    /// the window's wall-clock time.
    pub static_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy, picojoules.
    pub fn total_pj(&self) -> f64 {
        self.gpu_dynamic_pj + self.scu_dynamic_pj + self.dram_dynamic_pj + self.static_pj
    }

    /// Total energy in millijoules (for readable reports).
    pub fn total_mj(&self) -> f64 {
        self.total_pj() / 1e9
    }

    /// Component-wise sum.
    pub fn merge(&mut self, other: &EnergyBreakdown) {
        self.gpu_dynamic_pj += other.gpu_dynamic_pj;
        self.scu_dynamic_pj += other.scu_dynamic_pj;
        self.dram_dynamic_pj += other.dram_dynamic_pj;
        self.static_pj += other.static_pj;
    }
}

/// The energy model for one system (GTX 980 or TX1, with or without
/// an SCU).
#[derive(Debug, Clone, Copy)]
pub struct EnergyModel {
    params: EnergyParams,
    /// Whether an SCU is present (adds its static power to every
    /// window).
    scu_present: bool,
}

impl EnergyModel {
    /// Creates a model from a parameter preset.
    pub fn new(params: EnergyParams, scu_present: bool) -> Self {
        EnergyModel {
            params,
            scu_present,
        }
    }

    /// GTX 980 model.
    pub fn gtx980(scu_present: bool) -> Self {
        Self::new(EnergyParams::gtx980(), scu_present)
    }

    /// Tegra X1 model.
    pub fn tx1(scu_present: bool) -> Self {
        Self::new(EnergyParams::tx1(), scu_present)
    }

    /// The parameter set in use.
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }

    /// Dynamic energy of the DRAM events in `mem`, picojoules.
    pub fn dram_dynamic_pj(&self, mem: &MemoryStats) -> f64 {
        self.params
            .dram
            .dynamic_pj(mem.dram.reads, mem.dram.writes, mem.dram.activations)
    }

    /// GPU-side dynamic energy (instructions, L1, NoC, L2) of
    /// accumulated kernel statistics, picojoules. DRAM is reported
    /// separately by [`EnergyModel::dram_dynamic_pj`].
    pub fn gpu_dynamic_pj(&self, k: &KernelStats) -> f64 {
        let g = &self.params.gpu;
        k.thread_insts as f64 * g.inst_pj
            + k.l1.accesses as f64 * g.l1_access_pj
            + k.mem.l2.accesses as f64 * (g.l2_access_pj + g.noc_pj)
    }

    /// SCU-side dynamic energy (pipeline elements, probes, its L2/NoC
    /// traffic), picojoules.
    pub fn scu_dynamic_pj(&self, s: &ScuStats) -> f64 {
        let p = &self.params.scu;
        let g = &self.params.gpu;
        (s.control_elements + s.data_elements) as f64 * p.element_pj
            + s.skipped_elements as f64 * p.element_pj * 0.25
            + (s.filter.probes + s.group.elements) as f64 * p.probe_pj
            + s.mem.l2.accesses as f64 * (g.l2_access_pj + g.noc_pj)
    }

    /// Static energy over `elapsed_ns` of wall-clock time: GPU static
    /// + DRAM background (+ SCU static when present), picojoules.
    pub fn static_pj(&self, elapsed_ns: f64) -> f64 {
        let mut watts = self.params.gpu.static_w;
        if self.scu_present {
            watts += self.params.scu.static_w;
        }
        // 1 W × 1 ns = 1 nJ = 1000 pJ.
        watts * elapsed_ns * 1000.0 + self.params.dram.background_pj(elapsed_ns)
    }

    /// Full breakdown for an application window: accumulated GPU
    /// kernels `k`, accumulated SCU ops `s`, and elapsed wall-clock
    /// time.
    pub fn breakdown(&self, k: &KernelStats, s: &ScuStats, elapsed_ns: f64) -> EnergyBreakdown {
        let mut mem = k.mem;
        mem.merge(&s.mem);
        EnergyBreakdown {
            gpu_dynamic_pj: self.gpu_dynamic_pj(k),
            scu_dynamic_pj: self.scu_dynamic_pj(s),
            dram_dynamic_pj: self.dram_dynamic_pj(&mem),
            static_pj: self.static_pj(elapsed_ns),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scu_mem::stats::{CacheStats, DramStats};

    fn kernel_with(insts: u64, l1: u64, l2: u64, dram_reads: u64) -> KernelStats {
        KernelStats {
            thread_insts: insts,
            l1: CacheStats {
                accesses: l1,
                ..Default::default()
            },
            mem: MemoryStats {
                l2: CacheStats {
                    accesses: l2,
                    ..Default::default()
                },
                dram: DramStats {
                    reads: dram_reads,
                    ..Default::default()
                },
            },
            ..Default::default()
        }
    }

    #[test]
    fn gpu_dynamic_scales_with_instructions() {
        let m = EnergyModel::gtx980(false);
        let small = m.gpu_dynamic_pj(&kernel_with(1000, 0, 0, 0));
        let big = m.gpu_dynamic_pj(&kernel_with(2000, 0, 0, 0));
        assert!((big - 2.0 * small).abs() < 1e-9);
    }

    #[test]
    fn dram_dynamic_counts_both_requesters() {
        let m = EnergyModel::tx1(true);
        let k = kernel_with(0, 0, 0, 10);
        let mut s = ScuStats::default();
        s.mem.dram.reads = 5; // nested field: no initializer shorthand
        let b = m.breakdown(&k, &s, 0.0);
        let expect = m.params().dram.read_pj_per_access * 15.0;
        assert!((b.dram_dynamic_pj - expect).abs() < 1e-9);
    }

    #[test]
    fn static_energy_includes_scu_only_when_present() {
        let with = EnergyModel::gtx980(true);
        let without = EnergyModel::gtx980(false);
        let t = 1_000_000.0; // 1 ms
        assert!(with.static_pj(t) > without.static_pj(t));
        let delta = with.static_pj(t) - without.static_pj(t);
        let expect = with.params().scu.static_w * t * 1000.0;
        assert!((delta - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn breakdown_total_sums_components() {
        let m = EnergyModel::tx1(true);
        let k = kernel_with(100, 50, 20, 5);
        let s = ScuStats {
            data_elements: 40,
            ..Default::default()
        };
        let b = m.breakdown(&k, &s, 1000.0);
        let sum = b.gpu_dynamic_pj + b.scu_dynamic_pj + b.dram_dynamic_pj + b.static_pj;
        assert!((b.total_pj() - sum).abs() < 1e-9);
        assert!(b.total_pj() > 0.0);
    }

    #[test]
    fn scu_moves_data_cheaper_than_gpu() {
        // Moving N elements through the SCU must cost less (core-side)
        // than N loads+stores worth of GPU instructions — the §6.1
        // specialisation claim at the model level.
        let m = EnergyModel::tx1(true);
        let n = 1_000_000u64;
        let k = kernel_with(2 * n, n / 16, 0, 0); // ld+st per element
        let s = ScuStats {
            control_elements: n,
            data_elements: n,
            ..Default::default()
        };
        assert!(m.scu_dynamic_pj(&s) < m.gpu_dynamic_pj(&k) / 2.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = EnergyBreakdown {
            gpu_dynamic_pj: 1.0,
            scu_dynamic_pj: 2.0,
            dram_dynamic_pj: 3.0,
            static_pj: 4.0,
        };
        a.merge(&a.clone());
        assert_eq!(a.total_pj(), 20.0);
        assert!((a.total_mj() - 20.0 / 1e9).abs() < 1e-18);
    }
}

//! # scu-energy — event-based energy and area models
//!
//! Replaces the paper's GPUWattch/McPAT + Synopsys-synthesis power and
//! area methodology (§5) with an event-energy formulation:
//!
//! ```text
//! E = Σ (events × per-event energy) + Σ (static power × busy time)
//! ```
//!
//! * [`constants`] — per-event energy parameters for the GPU core
//!   side, the SCU pipeline, and static powers, with GTX 980 and
//!   Tegra X1 presets. DRAM per-event energies live with the DRAM
//!   model in [`scu_mem::dram::DramEnergyParams`].
//! * [`model`] — [`model::EnergyModel`] turns accumulated
//!   [`scu_gpu::KernelStats`] / [`scu_core::ScuStats`] windows into an
//!   [`model::EnergyBreakdown`] (GPU dynamic, SCU dynamic, DRAM
//!   dynamic, static).
//! * [`area`] — the SCU area model (§6.4): per-component mm² at 32 nm
//!   calibrated to the paper's synthesis totals (13.27 mm² at pipeline
//!   width 4, 3.65 mm² at width 1; 3.3% / 4.1% of total GPU area).
//!
//! The absolute constants are datasheet/GPUWattch-class figures; what
//! the reproduction relies on (and what `EXPERIMENTS.md` checks) are
//! the *relative* energies between the baseline GPU runs and the
//! SCU-offloaded runs.

pub mod area;
pub mod constants;
pub mod model;

pub use area::ScuAreaModel;
pub use constants::{EnergyParams, GpuEnergyParams, ScuEnergyParams};
pub use model::{EnergyBreakdown, EnergyModel};

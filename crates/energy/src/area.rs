//! SCU area model (§6.4).
//!
//! The paper synthesizes the SCU at 32 nm / 0.78 V and reports
//! 13.27 mm² next to the GTX 980 (3.3% of total area) and 3.65 mm²
//! next to the TX1 (4.1%). The model here decomposes those totals into
//! a fixed part (control, buffers: the 5 KB vector FIFO, 38 KB request
//! FIFO and 18 KB hash request buffer — the hash *table* itself lives
//! in existing DRAM/L2 and costs no area, §6.4) plus a per-pipeline-
//! lane part (fetch/store datapath, coalescing CAMs, bitmask logic).
//! The two published design points pin both coefficients.

/// Area model for an SCU instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScuAreaModel {
    /// Fixed area: control + SRAM buffers, mm².
    pub fixed_mm2: f64,
    /// Area per pipeline lane, mm².
    pub lane_mm2: f64,
}

impl Default for ScuAreaModel {
    fn default() -> Self {
        // Solved from the paper's two design points:
        //   width 1 -> 3.65 mm²,  width 4 -> 13.27 mm².
        ScuAreaModel {
            fixed_mm2: 0.4433,
            lane_mm2: 3.2067,
        }
    }
}

/// Reference die areas of the host GPUs, mm² (28 nm Maxwell dies,
/// consistent with the paper's 3.3% / 4.1% overhead figures).
pub mod gpu_area {
    /// GTX 980 (GM204) die area, mm².
    pub const GTX980_MM2: f64 = 398.0;
    /// Tegra X1 GPU partition area, mm².
    pub const TX1_MM2: f64 = 87.0;
}

impl ScuAreaModel {
    /// Area of an SCU with the given pipeline width, mm².
    pub fn area_mm2(&self, pipeline_width: u32) -> f64 {
        self.fixed_mm2 + self.lane_mm2 * pipeline_width as f64
    }

    /// Area overhead relative to a host GPU of `gpu_mm2`, in `[0, 1]`.
    pub fn overhead(&self, pipeline_width: u32, gpu_mm2: f64) -> f64 {
        self.area_mm2(pipeline_width) / gpu_mm2
    }

    /// Per-component split of one lane, mm² — proportions estimated
    /// from the unit mix of Figure 7 (the coalescing unit's CAMs
    /// dominate).
    pub fn lane_components_mm2(&self) -> [(&'static str, f64); 5] {
        let l = self.lane_mm2;
        [
            ("address-generator", 0.10 * l),
            ("data-fetch", 0.22 * l),
            ("coalescing-unit", 0.38 * l),
            ("bitmask-constructor", 0.08 * l),
            ("data-store", 0.22 * l),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_design_points() {
        let m = ScuAreaModel::default();
        assert!(
            (m.area_mm2(1) - 3.65).abs() < 0.01,
            "width-1 {}",
            m.area_mm2(1)
        );
        assert!(
            (m.area_mm2(4) - 13.27).abs() < 0.01,
            "width-4 {}",
            m.area_mm2(4)
        );
    }

    #[test]
    fn matches_paper_overheads() {
        let m = ScuAreaModel::default();
        let g = m.overhead(4, gpu_area::GTX980_MM2);
        let t = m.overhead(1, gpu_area::TX1_MM2);
        assert!((g - 0.033).abs() < 0.002, "GTX980 overhead {g}");
        assert!((t - 0.041).abs() < 0.003, "TX1 overhead {t}");
    }

    #[test]
    fn lane_components_sum_to_lane() {
        let m = ScuAreaModel::default();
        let sum: f64 = m.lane_components_mm2().iter().map(|(_, a)| a).sum();
        assert!((sum - m.lane_mm2).abs() < 1e-9);
    }

    #[test]
    fn area_grows_linearly_with_width() {
        let m = ScuAreaModel::default();
        let d1 = m.area_mm2(2) - m.area_mm2(1);
        let d2 = m.area_mm2(3) - m.area_mm2(2);
        assert!((d1 - d2).abs() < 1e-12);
        assert!((d1 - m.lane_mm2).abs() < 1e-12);
    }
}

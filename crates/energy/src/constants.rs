//! Per-event energy constants.
//!
//! Values are GPUWattch/McPAT-class figures for a Maxwell-era process:
//! the GTX 980 is tuned for throughput at high voltage (higher
//! per-event energy and a large static floor), the Tegra X1 for energy
//! efficiency. The SCU pipeline constants reflect a narrow,
//! special-purpose datapath synthesized at 0.78 V / 32 nm (§5): moving
//! an element through the SCU costs roughly an order of magnitude less
//! than executing the equivalent instructions on an SM — this gap is
//! the "specialised pipeline" energy source the paper names first in
//! §6.1.

use scu_mem::dram::DramEnergyParams;

/// Per-event energies for the GPU core side (SMs, L1, NoC, L2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuEnergyParams {
    /// Energy per dynamic thread instruction (fetch/decode/execute
    /// amortised), picojoules.
    pub inst_pj: f64,
    /// Energy per L1 line access, picojoules.
    pub l1_access_pj: f64,
    /// Energy per shared-L2 line access, picojoules.
    pub l2_access_pj: f64,
    /// Energy per interconnect traversal (one line transaction),
    /// picojoules.
    pub noc_pj: f64,
    /// GPU static (leakage + clock) power, watts.
    pub static_w: f64,
}

impl GpuEnergyParams {
    /// GTX 980 (high-performance) constants.
    ///
    /// `inst_pj` is the GPUWattch-style *attributed* energy per
    /// executed instruction on memory-bound workloads: the whole SM's
    /// activity power (fetch/decode/schedulers/register file, limited
    /// clock gating while stalled) divided by the achieved IPC. Graph
    /// kernels on a GTX 980 run at a few percent of peak IPC while the
    /// chip draws ~100 W, which is what makes the GPU energy-
    /// inefficient at compaction (§1) and the offload so profitable in
    /// Figure 9.
    pub fn gtx980() -> Self {
        GpuEnergyParams {
            inst_pj: 3_500.0,
            l1_access_pj: 100.0,
            l2_access_pj: 400.0,
            noc_pj: 100.0,
            static_w: 12.0,
        }
    }

    /// Tegra X1 (low-power) constants: roughly an order of magnitude
    /// less energy per attributed instruction than the GTX 980 (the
    /// whole module draws ~2 W on these workloads).
    pub fn tx1() -> Self {
        GpuEnergyParams {
            inst_pj: 350.0,
            l1_access_pj: 40.0,
            l2_access_pj: 150.0,
            noc_pj: 30.0,
            static_w: 0.6,
        }
    }
}

/// Per-event energies for the SCU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScuEnergyParams {
    /// Energy to move one element through the pipeline, picojoules.
    pub element_pj: f64,
    /// Hash-probe logic energy (compare + victim select), picojoules
    /// — the table's *memory* traffic is charged through the L2/DRAM
    /// events it generates.
    pub probe_pj: f64,
    /// SCU static power, watts (scales with the synthesized area).
    pub static_w: f64,
}

impl ScuEnergyParams {
    /// SCU sized for the GTX 980 (pipeline width 4).
    pub fn gtx980() -> Self {
        ScuEnergyParams {
            element_pj: 25.0,
            probe_pj: 30.0,
            static_w: 0.40,
        }
    }

    /// SCU sized for the TX1 (pipeline width 1).
    pub fn tx1() -> Self {
        ScuEnergyParams {
            element_pj: 8.0,
            probe_pj: 10.0,
            static_w: 0.025,
        }
    }
}

/// The full parameter set for one system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// GPU-side constants.
    pub gpu: GpuEnergyParams,
    /// SCU-side constants.
    pub scu: ScuEnergyParams,
    /// DRAM per-event constants (shared with the timing model).
    pub dram: DramEnergyParams,
}

impl EnergyParams {
    /// GTX 980 + GDDR5 preset.
    pub fn gtx980() -> Self {
        EnergyParams {
            gpu: GpuEnergyParams::gtx980(),
            scu: ScuEnergyParams::gtx980(),
            dram: DramEnergyParams::gddr5(),
        }
    }

    /// Tegra X1 + LPDDR4 preset.
    pub fn tx1() -> Self {
        EnergyParams {
            gpu: GpuEnergyParams::tx1(),
            scu: ScuEnergyParams::tx1(),
            dram: DramEnergyParams::lpddr4(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx1_cheaper_per_event_than_gtx980() {
        let g = GpuEnergyParams::gtx980();
        let t = GpuEnergyParams::tx1();
        assert!(t.inst_pj < g.inst_pj);
        assert!(t.l2_access_pj < g.l2_access_pj);
        assert!(t.static_w < g.static_w);
    }

    #[test]
    fn scu_element_cheaper_than_gpu_instruction() {
        // The specialisation argument of §6.1: an SCU element-op must
        // cost far less than a GPU instruction.
        for (g, s) in [
            (GpuEnergyParams::gtx980(), ScuEnergyParams::gtx980()),
            (GpuEnergyParams::tx1(), ScuEnergyParams::tx1()),
        ] {
            assert!(s.element_pj * 4.0 < g.inst_pj);
        }
    }

    #[test]
    fn scu_static_is_small_fraction_of_gpu() {
        let p = EnergyParams::gtx980();
        assert!(p.scu.static_w / p.gpu.static_w < 0.05);
        let p = EnergyParams::tx1();
        assert!(p.scu.static_w / p.gpu.static_w < 0.06);
    }

    #[test]
    fn presets_pair_correct_dram() {
        assert_eq!(EnergyParams::gtx980().dram, DramEnergyParams::gddr5());
        assert_eq!(EnergyParams::tx1().dram, DramEnergyParams::lpddr4());
    }
}

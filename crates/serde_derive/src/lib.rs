//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no network and no registry cache, so the
//! real serde stack cannot be resolved. This crate derives the
//! workspace-local [`serde`](../serde) traits instead, covering exactly
//! the shapes this repository uses:
//!
//! - structs with named fields → JSON objects (fields in declaration
//!   order, so serialisation is byte-stable),
//! - enums whose variants are all units → JSON strings of the variant
//!   name (matching real serde's external tagging for unit variants).
//!
//! Generics, tuple structs and data-carrying enum variants are
//! rejected with a compile-time panic: hand-write the impl instead.
//! Parsing is done directly on the [`proc_macro::TokenStream`] —
//! `syn`/`quote` are equally unavailable offline.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the workspace-local trait).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item.shape {
        Shape::Struct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push((\"{f}\".to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(fields)\n\
                 }}\n}}\n",
                name = item.name
            )
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\",\n", name = item.name))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Str(match self {{\n{arms}}}.to_string())\n\
                 }}\n}}\n",
                name = item.name
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (the workspace-local trait).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item.shape {
        Shape::Struct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(obj, \"{f}\")?,\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 let obj = v.as_object().ok_or_else(|| \
                 ::serde::DeError::new(\"expected object for {name}\"))?;\n\
                 Ok({name} {{\n{inits}}})\n\
                 }}\n}}\n",
                name = item.name
            )
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),\n", name = item.name))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 let s = v.as_str().ok_or_else(|| \
                 ::serde::DeError::new(\"expected string for {name}\"))?;\n\
                 match s {{\n{arms}\
                 other => Err(::serde::DeError::new(&format!(\
                 \"unknown {name} variant '{{other}}'\"))),\n\
                 }}\n}}\n}}\n",
                name = item.name
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}

enum Shape {
    /// Named field identifiers, in declaration order.
    Struct(Vec<String>),
    /// Unit variant identifiers, in declaration order.
    Enum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Skips any number of `#[...]` attribute pairs starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips `pub` / `pub(...)` starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected item name, found {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!(
                "serde_derive stub: generics on `{name}` are not supported; hand-write the impl"
            );
        }
    }
    let body = tokens[i..]
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .unwrap_or_else(|| {
            panic!("serde_derive stub: `{name}` has no braced body (tuple/unit items unsupported)")
        });
    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_struct_fields(&name, body)),
        "enum" => Shape::Enum(parse_enum_variants(&name, body)),
        other => panic!("serde_derive stub: cannot derive for `{other}` items"),
    };
    Item { name, shape }
}

fn parse_struct_fields(name: &str, body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        if i >= tokens.len() {
            break;
        }
        match &tokens[i] {
            TokenTree::Ident(id) => fields.push(id.to_string()),
            other => panic!("serde_derive stub: expected field name in `{name}`, found {other}"),
        }
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive stub: expected ':' in `{name}`, found {other}"),
        }
        // Skip the type: everything up to the next top-level ','.
        // Generic arguments arrive as single `Group`/`Punct` trees, but
        // `<`/`>` appear as plain puncts, so track angle depth.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_enum_variants(name: &str, body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        match &tokens[i] {
            TokenTree::Ident(id) => variants.push(id.to_string()),
            other => panic!("serde_derive stub: expected variant in `{name}`, found {other}"),
        }
        i += 1;
        match tokens.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(other) => panic!(
                "serde_derive stub: only unit variants are supported; \
                 `{name}` has data near {other}"
            ),
        }
    }
    variants
}

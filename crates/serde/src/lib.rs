//! Offline stand-in for `serde`.
//!
//! The build environment has no network and no registry cache, so the
//! real serde cannot be resolved. This crate provides the small slice
//! of its surface the workspace actually uses — a [`Serialize`] /
//! [`Deserialize`] trait pair over a JSON-shaped [`Value`] — with the
//! same derive-macro spelling, so user code is written exactly as it
//! would be against real serde. The sibling `serde_json` package
//! supplies the string syntax (printing and parsing).
//!
//! Design constraints that matter to the workspace:
//!
//! - **Byte-stable serialisation.** [`Value::Object`] preserves
//!   insertion order (derives emit fields in declaration order), so
//!   serialising the same data twice yields identical bytes — the
//!   experiment harness compares and caches on those bytes.
//! - **Lossless numerics.** `u64` counters exceed 2^53 in long
//!   simulations, so integers are kept apart from floats rather than
//!   funnelled through `f64`.

// Lets the `::serde::` paths emitted by the derive macros resolve
// when the derives are used inside this crate (e.g. its own tests).
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (serialised without a decimal point).
    U64(u64),
    /// A negative integer (serialised without a decimal point).
    I64(i64),
    /// A finite float. Non-finite floats serialise as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion-ordered, duplicate keys are not checked.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The entries of an object, if this is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The elements of an array, if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view: integers are widened losslessly, floats returned
    /// verbatim.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            Value::F64(x) => Some(x),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The value as a signed integer, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(n) => i64::try_from(n).ok(),
            Value::I64(n) => Some(n),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// A deserialisation error: a human-readable path/description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error from a description.
    pub fn new(msg: &str) -> Self {
        DeError(msg.to_string())
    }

    /// Prefixes the description with a location, for field context.
    pub fn context(self, what: &str) -> Self {
        DeError(format!("{what}: {}", self.0))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Converts `self` into a [`Value`] tree.
pub trait Serialize {
    /// The value tree representing `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses the value tree, describing the mismatch on failure.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up `name` in an object's entries and deserialises it —
/// the helper the derive macro expands struct fields into.
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, DeError> {
    let v = obj
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{name}`")))?;
    T::from_value(v).map_err(|e| e.context(name))
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and containers.

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::F64(*self)
        } else {
            Value::Null
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls.

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::new("expected bool"))
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::new("expected integer"))?;
                <$t>::try_from(n).map_err(|_| {
                    DeError(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
de_int!(u8, u16, u32, i8, i16, i32, i64, isize);

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_u64()
            .ok_or_else(|| DeError::new("expected unsigned integer"))
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let n = u64::from_value(v)?;
        usize::try_from(n).map_err(|_| DeError(format!("integer {n} out of range for usize")))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if v.is_null() {
            // Non-finite floats serialise as null; NaN is the honest
            // round-trip of "not a representable number".
            return Ok(f64::NAN);
        }
        v.as_f64().ok_or_else(|| DeError::new("expected number"))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new("expected string"))
    }
}

/// `&'static str` deserialises by interning: reports carry
/// `&'static str` names, and the handful of distinct names observed in
/// a process is tiny, so leaking each new one once is bounded.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        use std::sync::Mutex;
        static INTERNED: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
        let s = v.as_str().ok_or_else(|| DeError::new("expected string"))?;
        let mut pool = INTERNED.lock().expect("intern pool poisoned");
        if let Some(hit) = pool.iter().find(|x| **x == s) {
            return Ok(hit);
        }
        let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
        pool.push(leaked);
        Ok(leaked)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v.as_array().ok_or_else(|| DeError::new("expected array"))?;
        arr.iter()
            .enumerate()
            .map(|(i, x)| T::from_value(x).map_err(|e| e.context(&format!("[{i}]"))))
            .collect()
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Point {
        x: f64,
        count: u64,
        label: String,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Kind {
        Alpha,
        Beta,
    }

    #[test]
    fn struct_round_trip_preserves_field_order() {
        let p = Point {
            x: 1.5,
            count: u64::MAX,
            label: "hi".into(),
        };
        let v = p.to_value();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["x", "count", "label"]);
        assert_eq!(Point::from_value(&v).unwrap(), p);
    }

    #[test]
    fn unit_enum_maps_to_variant_name() {
        assert_eq!(Kind::Beta.to_value(), Value::Str("Beta".into()));
        assert_eq!(
            Kind::from_value(&Value::Str("Alpha".into())).unwrap(),
            Kind::Alpha
        );
        assert!(Kind::from_value(&Value::Str("Gamma".into())).is_err());
    }

    #[test]
    fn u64_survives_beyond_f64_precision() {
        let n: u64 = (1 << 53) + 1;
        assert_eq!(u64::from_value(&n.to_value()).unwrap(), n);
    }

    #[test]
    fn missing_field_names_the_field() {
        let v = Value::Object(vec![("x".into(), Value::F64(0.0))]);
        let err = Point::from_value(&v).unwrap_err();
        assert!(err.to_string().contains("count"), "{err}");
    }

    #[test]
    fn static_str_interns() {
        let a = <&'static str>::from_value(&Value::Str("bfs".into())).unwrap();
        let b = <&'static str>::from_value(&Value::Str("bfs".into())).unwrap();
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn option_and_vec_round_trip() {
        let v: Vec<Option<u32>> = vec![Some(3), None];
        let round: Vec<Option<u32>> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(round, v);
    }
}
